//! The byte-range replace operation (§4.2).
//!
//! Replace locates the range with the search algorithm and overwrites
//! leaf pages **in place** — it is the one update that modifies leaf
//! pages and leaves the index untouched, so it is protected by logging
//! rather than shadowing (§4.5). Only partially overwritten boundary
//! pages need to be read first.
//!
//! [`run_shadow`] is the MVCC variant: it rewrites every touched
//! segment copy-on-write onto a fresh extent and defers the free of
//! the old one, so a committed image a reader snapshot has pinned is
//! never overwritten (the concurrent front-end's lock-free read path
//! depends on exactly this).

// The one in-place overwrite of committed state in the system (rule
// L6, DESIGN.md §15): safe only once the undo images are forced.
//
// durability-class: committed-page requires = undo-image

use crate::error::{Error, Result};
use crate::object::LargeObject;
use crate::store::ObjectStore;
use crate::tree::{descend, leaf_entry, propagate};

// durability: requires(undo-image)
pub(crate) fn run(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    offset: u64,
    data: &[u8],
) -> Result<()> {
    let size = obj.size();
    let len = data.len() as u64;
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(Error::OutOfObjectBounds {
            offset,
            len,
            object_size: size,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    let ps = store.ps();
    let (mut path, mut rel) = descend(store, obj, offset)?;
    let mut src = data;
    loop {
        let e = leaf_entry(&path);
        let take = (e.bytes - rel).min(src.len() as u64);
        let p0 = rel / ps;
        let p1 = (rel + take - 1) / ps;
        let npages = p1 - p0 + 1;
        let mut buf = vec![0u8; (npages * ps) as usize];
        let head = (rel - p0 * ps) as usize; // bytes kept before the range
                                             // Bytes of the last covered page that survive past the range.
                                             // The page may be the segment's partial last page.
        let page_end = ((p1 + 1) * ps).min(e.bytes);
        let tail = (page_end - (rel + take)) as usize;
        if head > 0 {
            let page = store.volume().read_pages(e.ptr + p0, 1)?;
            buf[..ps as usize].copy_from_slice(&page);
        }
        if tail > 0 && (p1 > p0 || head == 0) {
            let page = store.volume().read_pages(e.ptr + p1, 1)?;
            let off = ((npages - 1) * ps) as usize;
            buf[off..].copy_from_slice(&page);
        }
        buf[head..head + take as usize].copy_from_slice(&src[..take as usize]);
        // durability: mutates(committed-page)
        store.volume().write_pages(e.ptr + p0, &buf)?;
        src = &src[take as usize..];
        if src.is_empty() {
            return Ok(());
        }
        super::read::advance(store, &mut path)?;
        rel = 0;
    }
}

/// Copy-on-write replace (§4.5 applied to leaf pages): every segment
/// the range touches is re-materialized — old segment read, replaced
/// bytes overlaid, result written to a **freshly allocated** extent of
/// the same size — and the old extent is freed *deferred* into the
/// active transaction's release-lock batch. The index path above each
/// touched segment is rewritten through the normal shadowing
/// `propagate`, so the committed tree (root descriptor, index pages,
/// leaf segments) stays byte-identical on disk until the deferral is
/// reclaimed. No before-images and no mid-operation log force are
/// needed: like insert/delete/append, nothing committed is overwritten.
pub(crate) fn run_shadow(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    offset: u64,
    data: &[u8],
) -> Result<()> {
    let size = obj.size();
    let len = data.len() as u64;
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(Error::OutOfObjectBounds {
            offset,
            len,
            object_size: size,
        });
    }
    if data.is_empty() {
        return Ok(());
    }
    let ps = store.ps();
    let mut off = offset;
    let mut src = data;
    while !src.is_empty() {
        // Re-descend for every segment: `propagate` below rewrites the
        // whole index path (shadowed), so a saved path goes stale the
        // moment one segment is swapped.
        let (mut path, rel) = descend(store, obj, off)?;
        let e = leaf_entry(&path);
        let take = (e.bytes - rel).min(src.len() as u64);
        let seg_pages = e.bytes.div_ceil(ps);
        let mut buf = store.volume().read_pages(e.ptr, seg_pages)?;
        let lo = rel as usize;
        // lint: allow(panic, reason = "rel + take <= e.bytes <= buf len by leaf geometry; take <= src len by min")
        buf[lo..lo + take as usize].copy_from_slice(&src[..take as usize]);
        let ext = store.alloc_extent(seg_pages)?;
        store.volume().write_pages(ext.start, &buf)?;
        store.free_pages(e.ptr, seg_pages)?;
        if let Some(step) = path.last_mut() {
            step.node.entries[step.child].ptr = ext.start;
        }
        propagate(store, obj, path)?;
        off += take;
        // lint: allow(panic, reason = "take <= src len by the min above")
        src = &src[take as usize..];
    }
    Ok(())
}
