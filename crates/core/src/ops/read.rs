//! The search (byte-range read) operation, §4.2.
//!
//! Descend the tree to the leaf segment holding the first byte, read the
//! covered pages of that segment **in one multi-page call** (one seek),
//! then "use the stack to obtain the rest of the bytes": advance the
//! saved path to the logically next segment without re-descending from
//! the root.
//!
//! Page runs whose bytes are needed in full are read straight into the
//! output buffer (no intermediate copy); only the partial first/last
//! pages of the range go through a one-page scratch buffer.

use crate::error::{Error, Result};
use crate::object::LargeObject;
use crate::store::ObjectStore;
use crate::tree::{descend, leaf_entry, PathStep};

pub(crate) fn run(
    store: &ObjectStore,
    obj: &LargeObject,
    offset: u64,
    len: u64,
) -> Result<Vec<u8>> {
    let size = obj.size();
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(Error::OutOfObjectBounds {
            offset,
            len,
            object_size: size,
        });
    }
    if len == 0 {
        return Ok(Vec::new());
    }
    let ps = store.ps();
    let psz = ps as usize;
    let (mut path, mut rel) = descend(store, obj, offset)?;
    let mut out = vec![0u8; len as usize];
    let mut written = 0usize;
    let mut scratch = vec![0u8; psz];
    let mut remaining = len;
    loop {
        let e = leaf_entry(&path);
        let take = (e.bytes - rel).min(remaining) as usize;
        let p0 = rel / ps;
        let skip = (rel - p0 * ps) as usize;

        // The segment contributes bytes [rel, rel+take). Split into a
        // partial head page, a run of whole pages, and a partial tail
        // page; the whole-page run lands directly in `out`.
        let mut seg_written = 0usize;
        let mut page = p0;
        if skip > 0 {
            store.volume().read_into(e.ptr + page, 1, &mut scratch)?;
            let n = (psz - skip).min(take);
            out[written..written + n].copy_from_slice(&scratch[skip..skip + n]);
            seg_written += n;
            page += 1;
        }
        let whole_pages = (take - seg_written) / psz;
        if whole_pages > 0 {
            let n = whole_pages * psz;
            store.volume().read_into(
                e.ptr + page,
                whole_pages as u64,
                &mut out[written + seg_written..written + seg_written + n],
            )?;
            seg_written += n;
            page += whole_pages as u64;
        }
        if seg_written < take {
            store.volume().read_into(e.ptr + page, 1, &mut scratch)?;
            let n = take - seg_written;
            out[written + seg_written..written + take].copy_from_slice(&scratch[..n]);
            seg_written = take;
        }
        debug_assert_eq!(seg_written, take);
        written += take;
        remaining -= take as u64;
        if remaining == 0 {
            return Ok(out);
        }
        advance(store, &mut path)?;
        rel = 0;
    }
}

/// Move the saved path to the next leaf segment in byte order.
pub(crate) fn advance(store: &ObjectStore, path: &mut Vec<PathStep>) -> Result<()> {
    loop {
        let top = path.last_mut().ok_or_else(|| Error::CorruptObject {
            reason: "advanced past the last segment".into(),
        })?;
        if top.child + 1 < top.node.entries.len() {
            top.child += 1;
            break;
        }
        path.pop();
    }
    // Descend leftmost back to level 1.
    while path.last().expect("non-empty").node.level > 1 {
        let top = path.last().unwrap();
        let ptr = top.node.entries[top.child].ptr;
        let node = store.read_node(ptr)?;
        path.push(PathStep {
            page: Some(ptr),
            node,
            child: 0,
        });
    }
    Ok(())
}
