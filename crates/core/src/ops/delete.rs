//! The delete operation (§4.3.2), with §4.4 page reshuffling.
//!
//! A range delete has two phases, exactly as in the paper:
//!
//! 1. **Leaf analysis** (Fig 7): locate the segment S holding the last
//!    kept byte on the left and the segment S′ holding the first kept
//!    byte on the right. S keeps its prefix **L** without being read;
//!    the kept bytes of S′'s boundary page Q move into a new segment
//!    **N** (the only leaf page the operation ever reads); the pages of
//!    S′ after Q stay in place as **R**. L, N and R are then reshuffled
//!    under the threshold T. Deletions that end on a page boundary —
//!    including truncation and whole-object deletion — create no N and
//!    touch no leaf page at all.
//! 2. **Tree surgery**: entire subtrees strictly inside the range are
//!    freed by reading index pages only ("without touching a single leaf
//!    segment"); the boundary entries are replaced by L/N/R; nodes that
//!    fall below half-full are merged or rotated with a sibling; finally
//!    the root is collapsed while it has a single index-node child.

use eos_pager::PageId;

use crate::error::{Error, Result};
use crate::node::{node_min, Entry, Node};
use crate::object::LargeObject;
use crate::reshuffle::reshuffle;
use crate::store::ObjectStore;
use crate::tree::{descend, free_subtree, leaf_entry, normalize_root, split_even};

pub(crate) fn run(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    offset: u64,
    len: u64,
) -> Result<()> {
    let size = obj.size();
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(Error::OutOfObjectBounds {
            offset,
            len,
            object_size: size,
        });
    }
    if len == 0 {
        return Ok(());
    }
    let (d0, d1) = (offset, offset + len);
    if d0 == 0 && d1 == size {
        // Deleting the entire object never touches a leaf segment.
        free_subtree(store, &obj.root)?;
        obj.root = Node::new(1);
        return Ok(());
    }

    let ps = store.ps();

    // ---- Phase 1: boundary analysis and data movement ------------------

    // Left boundary: the segment containing byte d0, when d0 falls
    // inside it. Its prefix of `l0` bytes survives as L.
    let left: Option<(Entry, u64)> = if d0 > 0 {
        let (path, rel) = descend(store, obj, d0)?;
        (rel > 0).then(|| (leaf_entry(&path), rel))
    } else {
        None
    };

    // Right boundary: the segment containing the last deleted byte; the
    // bytes after it survive as N (from the boundary page) and R.
    let (r_path, r_rel) = descend(store, obj, d1 - 1)?;
    let r_seg = leaf_entry(&r_path);
    let first_kept = r_rel + 1;
    let right: Option<(Entry, u64)> = (first_kept < r_seg.bytes).then_some((r_seg, first_kept));

    let same_segment = matches!((&left, &right), (Some((a, _)), Some((b, _))) if a.ptr == b.ptr);

    let l0 = left.map_or(0, |(_, rel)| rel);
    // (n0, r0, q, q_aligned): bytes for N and R, the boundary page
    // index, and whether the delete ends exactly on a page boundary.
    let (n0, r0, q, q_aligned) = match right {
        None => (0, 0, 0, true),
        Some((e, keep)) => {
            let q = keep / ps;
            let qb = keep % ps;
            if qb == 0 {
                (0, e.bytes - keep, q, true)
            } else {
                let page_q_bytes = (e.bytes - q * ps).min(ps);
                (
                    page_q_bytes - qb,
                    e.bytes.saturating_sub((q + 1) * ps),
                    q,
                    false,
                )
            }
        }
    };

    // Reshuffle under the threshold of the leaf parent receiving N.
    let parent_fill = r_path.last().expect("path").node.entries.len();
    let t = store.effective_threshold(obj, parent_fill);
    let plan = reshuffle(l0, n0, r0, ps, t, store.max_seg_pages());
    store.note_reshuffle(t, &plan);

    // Build and write N. Reads: L's donated tail (one call), then page Q
    // together with R's donated head (one contiguous call) — the paper's
    // worst case of two extra disk seeks.
    let mut n_entries: Vec<Entry> = Vec::new();
    if plan.n > 0 {
        let mut n_bytes = Vec::with_capacity(plan.n as usize);
        if plan.from_l > 0 {
            let (e, rel) = left.expect("from_l implies a left boundary");
            let lo_page = (rel - plan.from_l) / ps;
            let hi_page = (rel - 1) / ps;
            let src = store
                .volume()
                .read_pages(e.ptr + lo_page, hi_page - lo_page + 1)?;
            let a = (rel - plan.from_l - lo_page * ps) as usize;
            n_bytes.extend_from_slice(&src[a..a + plan.from_l as usize]);
        }
        let (e, keep) = right.expect("n > 0 implies a right boundary");
        let hi_page = if plan.from_r > 0 {
            q + 1 + (plan.from_r - 1) / ps
        } else {
            q
        };
        let src = store.volume().read_pages(e.ptr + q, hi_page - q + 1)?;
        let a = (keep - q * ps) as usize;
        n_bytes.extend_from_slice(&src[a..a + n0 as usize]);
        if plan.from_r > 0 {
            let a = ps as usize; // R begins on the page after Q
            n_bytes.extend_from_slice(&src[a..a + plan.from_r as usize]);
        }
        debug_assert_eq!(n_bytes.len() as u64, plan.n);
        n_entries = super::insert::write_new_segments(store, &n_bytes)?;
    }

    // Free dead pages and assemble the per-segment replacement lists.
    let mut repl: Vec<(PageId, Vec<Entry>)> = Vec::new();
    if same_segment {
        // One segment loses its middle: keep the L′ prefix, free up to
        // where R′ resumes.
        let (e, _) = left.expect("same_segment");
        let s_pages = e.bytes.div_ceil(ps);
        let keep_l = plan.l.div_ceil(ps);
        let donated_r = if r0 > 0 && plan.r == 0 {
            s_pages - (q + 1)
        } else {
            plan.from_r / ps
        };
        let r_from = (if q_aligned { q } else { q + 1 }) + donated_r;
        if r_from > keep_l {
            store.free_pages(e.ptr + keep_l, r_from - keep_l)?;
        }
        let mut entries = Vec::new();
        if plan.l > 0 {
            entries.push(Entry {
                bytes: plan.l,
                ptr: e.ptr,
            });
        }
        entries.extend(n_entries);
        if plan.r > 0 {
            entries.push(Entry {
                bytes: plan.r,
                ptr: e.ptr + r_from,
            });
        }
        repl.push((e.ptr, entries));
    } else {
        if let Some((e, _)) = left {
            // "To delete all bytes of S on the right of P_b, we simply
            // decrement the counts in the parent of S and free all pages
            // of S on the right of P" — plus any tail pages donated to N.
            let s_pages = e.bytes.div_ceil(ps);
            let keep = plan.l.div_ceil(ps);
            if keep < s_pages {
                store.free_pages(e.ptr + keep, s_pages - keep)?;
            }
            let mut entries = Vec::new();
            if plan.l > 0 {
                entries.push(Entry {
                    bytes: plan.l,
                    ptr: e.ptr,
                });
            }
            repl.push((e.ptr, entries));
        }
        if let Some((e, _)) = right {
            let s_pages = e.bytes.div_ceil(ps);
            let donated_r = if r0 > 0 && plan.r == 0 {
                s_pages - (q + 1)
            } else {
                plan.from_r / ps
            };
            let r_from = (if q_aligned { q } else { q + 1 }) + donated_r;
            if r_from > 0 {
                store.free_pages(e.ptr, r_from)?;
            }
            let mut entries = n_entries;
            if plan.r > 0 {
                entries.push(Entry {
                    bytes: plan.r,
                    ptr: e.ptr + r_from,
                });
            }
            repl.push((e.ptr, entries));
        }
    }

    // ---- Phase 2: tree surgery ------------------------------------------

    let mut root = std::mem::replace(&mut obj.root, Node::new(1));
    delete_in_node(store, &mut root, d0, d1, &repl)?;
    obj.root = root;
    normalize_root(store, obj)?;
    // Fix any under-filled node left along the deletion seam (see
    // tree::repair_seam for the case the in-recursion repair misses).
    crate::tree::repair_seam(store, obj, d0)
}

/// A child of the node being edited: either an untouched entry or a
/// modified in-memory node awaiting write-out.
enum Slot {
    Done(Entry),
    Pending { old_page: PageId, node: Node },
}

impl Slot {
    fn entry_count(&self) -> Option<usize> {
        match self {
            Slot::Pending { node, .. } => Some(node.entries.len()),
            Slot::Done(_) => None,
        }
    }

    fn into_node(self, store: &ObjectStore) -> Result<(PageId, Node)> {
        match self {
            Slot::Done(e) => Ok((e.ptr, store.read_node(e.ptr)?)),
            Slot::Pending { old_page, node } => Ok((old_page, node)),
        }
    }
}

/// Recursively delete `[d0, d1)` (relative to this node's span) from the
/// subtree under `node`, splicing in the boundary replacements and
/// repairing under-filled children. The node is edited in place; the
/// caller writes it out (the root stays in the descriptor).
fn delete_in_node(
    store: &mut ObjectStore,
    node: &mut Node,
    d0: u64,
    d1: u64,
    repl: &[(PageId, Vec<Entry>)],
) -> Result<()> {
    let ps = store.ps();
    let mut slots: Vec<Slot> = Vec::with_capacity(node.entries.len());
    let mut acc = 0u64;
    for e in std::mem::take(&mut node.entries) {
        let (lo, hi) = (acc, acc + e.bytes);
        acc = hi;
        if hi <= d0 || lo >= d1 {
            slots.push(Slot::Done(e));
            continue;
        }
        if node.level == 1 {
            match repl.iter().find(|(ptr, _)| *ptr == e.ptr) {
                Some((_, entries)) => {
                    slots.extend(entries.iter().map(|&e| Slot::Done(e)));
                }
                None => {
                    // Fully covered segment: freed without being read.
                    store.free_pages(e.ptr, e.bytes.div_ceil(ps))?;
                }
            }
        } else if lo >= d0 && hi <= d1 {
            // Entire subtree inside the range.
            let child = store.read_node(e.ptr)?;
            free_subtree(store, &child)?;
            store.free_node(e.ptr)?;
        } else {
            let mut child = store.read_node(e.ptr)?;
            delete_in_node(
                store,
                &mut child,
                d0.saturating_sub(lo),
                (d1 - lo).min(e.bytes),
                repl,
            )?;
            if child.entries.is_empty() {
                store.free_node(e.ptr)?;
            } else {
                slots.push(Slot::Pending {
                    old_page: e.ptr,
                    node: child,
                });
            }
        }
    }

    // Repair under-filled boundary children by merging or rotating with
    // a sibling ("check if a node … has now less than the allowed number
    // of pairs and if so, merge or rotate with a sibling").
    let min = node_min(store.page_size());
    loop {
        let deficient = slots
            .iter()
            .position(|s| s.entry_count().is_some_and(|n| n < min));
        let Some(i) = deficient else { break };
        if slots.len() == 1 {
            break; // No sibling; the root collapse handles the rest.
        }
        // Prefer a sibling already in memory.
        let j = if i > 0 && (i + 1 >= slots.len() || matches!(slots[i - 1], Slot::Pending { .. })) {
            i - 1
        } else {
            i + 1
        };
        let (a, b) = (i.min(j), i.max(j));
        let right = slots.remove(b).into_node(store)?;
        let left = slots.remove(a).into_node(store)?;
        debug_assert_eq!(left.1.level, right.1.level);
        let level = left.1.level;
        let mut combined = left.1.entries;
        combined.extend(right.1.entries);
        if combined.len() <= store.node_cap() {
            // Merge: one node survives, the other page is freed.
            store.free_node(right.0)?;
            slots.insert(
                a,
                Slot::Pending {
                    old_page: left.0,
                    node: Node {
                        level,
                        entries: combined,
                    },
                },
            );
        } else {
            // Rotate: split the union evenly so both are ≥ half full.
            let mut halves = split_even(&combined, 2).into_iter();
            slots.insert(
                a,
                Slot::Pending {
                    old_page: left.0,
                    node: Node {
                        level,
                        entries: halves.next().unwrap(),
                    },
                },
            );
            slots.insert(
                a + 1,
                Slot::Pending {
                    old_page: right.0,
                    node: Node {
                        level,
                        entries: halves.next().unwrap(),
                    },
                },
            );
        }
    }

    // Write out pending children and collect the final entry list. A
    // child that took extra replacement entries may overflow its page:
    // write_split turns it into several half-full-or-better nodes.
    let mut entries = Vec::with_capacity(slots.len());
    for s in slots {
        match s {
            Slot::Done(e) => entries.push(e),
            Slot::Pending { old_page, node: n } => {
                entries.extend(crate::tree::write_split(store, Some(old_page), &n)?);
            }
        }
    }
    node.entries = entries;
    Ok(())
}
