//! Positional-tree plumbing: descent with a saved path (the paper's
//! "stack"), bottom-up count propagation, node splits, and root
//! grow/collapse.

use eos_pager::PageId;

use crate::error::{Error, Result};
use crate::node::{Entry, Node};
use crate::object::LargeObject;
use crate::store::ObjectStore;

/// One step of a root-to-leaf-parent path. `page` is `None` for the
/// root (which lives in the client-held descriptor, not on a page).
#[derive(Debug, Clone)]
pub(crate) struct PathStep {
    pub page: Option<PageId>,
    pub node: Node,
    pub child: usize,
}

/// Descend from the root to the level-1 node whose child segment holds
/// byte `b`, saving the path ("save the address of S on the stack",
/// §4.2). Returns the path and `b` rebased to the leaf segment.
pub(crate) fn descend(
    store: &ObjectStore,
    obj: &LargeObject,
    b: u64,
) -> Result<(Vec<PathStep>, u64)> {
    if b >= obj.size() {
        return Err(Error::OutOfObjectBounds {
            offset: b,
            len: 1,
            object_size: obj.size(),
        });
    }
    let mut path = Vec::with_capacity(obj.root.level as usize);
    let mut node = obj.root.clone();
    let mut page = None;
    let mut rel = b;
    loop {
        let (child, inner) = node.find_child(rel);
        let level = node.level;
        let ptr = node.entries[child].ptr;
        path.push(PathStep { page, node, child });
        if level == 1 {
            return Ok((path, inner));
        }
        node = store.read_node(ptr)?;
        if node.level != level - 1 {
            return Err(Error::CorruptObject {
                reason: format!(
                    "child at page {ptr} has level {}, expected {}",
                    node.level,
                    level - 1
                ),
            });
        }
        page = Some(ptr);
        rel = inner;
    }
}

/// The leaf segment a finished descent points at.
pub(crate) fn leaf_entry(path: &[PathStep]) -> Entry {
    let last = path.last().expect("empty path");
    last.node.entries[last.child]
}

/// Rewrite every node on `path` bottom-up after its bottom node's
/// entries were edited in place, splitting overflowing nodes and
/// growing/collapsing the root as needed.
pub(crate) fn propagate(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    mut path: Vec<PathStep>,
) -> Result<()> {
    let mut step = path.pop().expect("empty path");
    while step.page.is_some() {
        let repl = finalize_node(store, &step)?;
        step = path.pop().expect("path must end at the root");
        let child = step.child;
        step.node.entries.splice(child..child + 1, repl);
    }
    debug_assert!(path.is_empty());
    obj.root = step.node;
    normalize_root(store, obj)
}

/// Write one non-root node back, splitting it if it overflows. Returns
/// the parent entries that now describe it (empty if the node vanished).
fn finalize_node(store: &mut ObjectStore, step: &PathStep) -> Result<Vec<Entry>> {
    write_split(store, step.page, &step.node)
}

/// Write a node to disk, splitting it into evenly sized (≥ half full)
/// chunks when it exceeds the page capacity. Returns the entries the
/// parent should hold for it (empty if the node had no entries).
pub(crate) fn write_split(
    store: &mut ObjectStore,
    old: Option<PageId>,
    node: &Node,
) -> Result<Vec<Entry>> {
    let cap = store.node_cap();
    if node.entries.is_empty() {
        if let Some(p) = old {
            store.free_node(p)?;
        }
        return Ok(Vec::new());
    }
    if node.entries.len() <= cap {
        let page = store.write_node(old, node)?;
        return Ok(vec![Entry {
            bytes: node.total_bytes(),
            ptr: page,
        }]);
    }
    let chunks = chunk_entries(&node.entries, cap);
    let mut out = Vec::with_capacity(chunks.len());
    let mut first = true;
    for chunk in chunks {
        let n = Node {
            level: node.level,
            entries: chunk,
        };
        let page = store.write_node(if first { old } else { None }, &n)?;
        first = false;
        out.push(Entry {
            bytes: n.total_bytes(),
            ptr: page,
        });
    }
    Ok(out)
}

/// Split `entries` into `ceil(len/cap)` runs of nearly equal length, so
/// every resulting node is at least half full.
pub(crate) fn chunk_entries(entries: &[Entry], cap: usize) -> Vec<Vec<Entry>> {
    split_even(entries, entries.len().div_ceil(cap))
}

/// Split `entries` into exactly `chunks` runs of nearly equal length.
pub(crate) fn split_even(entries: &[Entry], chunks: usize) -> Vec<Vec<Entry>> {
    let n = entries.len();
    debug_assert!(chunks >= 1 && chunks <= n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut it = entries.iter().copied();
    for i in 0..chunks {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

/// Enforce the root rules: grow a level while the root exceeds its
/// (client-bounded) capacity; collapse while it has exactly one child
/// that is an index node ("Fix Root", §4.3.2 step 6).
pub(crate) fn normalize_root(store: &mut ObjectStore, obj: &mut LargeObject) -> Result<()> {
    let root_cap = store.root_cap();
    let node_cap = store.node_cap();
    while obj.root.entries.len() > root_cap {
        let level = obj.root.level;
        let n = obj.root.entries.len();
        // At least two children, else the collapse rule would undo this.
        let num = n.div_ceil(node_cap).max(2).min(n);
        let chunks = split_even(&obj.root.entries, num);
        let mut entries = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            let n = Node {
                level,
                entries: chunk,
            };
            let page = store.write_node(None, &n)?;
            entries.push(Entry {
                bytes: n.total_bytes(),
                ptr: page,
            });
        }
        obj.root = Node {
            level: level + 1,
            entries,
        };
    }
    while obj.root.level > 1 && obj.root.entries.len() == 1 {
        let ptr = obj.root.entries[0].ptr;
        let child = store.read_node(ptr)?;
        store.free_node(ptr)?;
        obj.root = child;
    }
    Ok(())
}

/// Append `new_entries` leaf segments at the end of the object, first
/// shrinking the current last segment by `shrink_last_by` bytes (the
/// partial-page absorption of §4.1; the caller already freed the page).
/// Bulk-builds index levels when the object was empty.
pub(crate) fn append_entries(
    store: &mut ObjectStore,
    obj: &mut LargeObject,
    new_entries: Vec<Entry>,
    shrink_last_by: u64,
) -> Result<()> {
    if obj.is_empty() {
        debug_assert_eq!(shrink_last_by, 0);
        obj.root = Node {
            level: 1,
            entries: new_entries,
        };
        return normalize_root(store, obj);
    }
    let (mut path, _) = descend(store, obj, obj.size() - 1)?;
    let bottom = path.last_mut().expect("empty path");
    debug_assert_eq!(bottom.child, bottom.node.entries.len() - 1);
    if shrink_last_by > 0 {
        let last = bottom.node.entries.last_mut().unwrap();
        debug_assert!(last.bytes >= shrink_last_by);
        last.bytes -= shrink_last_by;
        if last.bytes == 0 {
            bottom.node.entries.pop();
        }
    }
    bottom.node.entries.extend(new_entries);
    propagate(store, obj, path)
}

/// Post-delete seam repair. A range delete can leave under-filled nodes
/// along the two boundary paths; the in-recursion repair fixes them
/// against siblings *within their parent*, but a node that was its
/// parent's only child escapes — its parent gets merged a level up and
/// the deficiency survives under the merged node. This pass descends
/// along the deletion seam from the root, and whenever a child within
/// one hop of the seam is below half full, merges or rotates it with an
/// adjacent sibling and restarts. Counts never change, so only pointers
/// propagate.
pub(crate) fn repair_seam(store: &mut ObjectStore, obj: &mut LargeObject, seam: u64) -> Result<()> {
    let min = crate::node::node_min(store.page_size());
    let cap = store.node_cap();
    'outer: loop {
        normalize_root(store, obj)?;
        let size = obj.size();
        if size == 0 || obj.root.level == 1 {
            return Ok(());
        }
        let b = seam.min(size - 1);
        let mut path: Vec<PathStep> = Vec::new();
        let mut node = obj.root.clone();
        let mut page: Option<PageId> = None;
        let mut rel = b;
        while node.level > 1 {
            let (i, inner) = node.find_child(rel);
            // Examine the seam child and its immediate neighbours.
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(node.entries.len() - 1);
            for j in lo..=hi {
                let child = store.read_node(node.entries[j].ptr)?;
                if child.entries.len() >= min || node.entries.len() < 2 {
                    continue;
                }
                // Merge/rotate child j with an adjacent sibling.
                let k = if j + 1 < node.entries.len() {
                    j + 1
                } else {
                    j - 1
                };
                let (a, b2) = (j.min(k), j.max(k));
                let left_ptr = node.entries[a].ptr;
                let right_ptr = node.entries[b2].ptr;
                let left = store.read_node(left_ptr)?;
                let right = store.read_node(right_ptr)?;
                let level = left.level;
                let mut combined = left.entries;
                combined.extend(right.entries);
                let new_entries: Vec<Entry> = if combined.len() <= cap {
                    store.free_node(right_ptr)?;
                    let n = Node {
                        level,
                        entries: combined,
                    };
                    let p = store.write_node(Some(left_ptr), &n)?;
                    vec![Entry {
                        bytes: n.total_bytes(),
                        ptr: p,
                    }]
                } else {
                    let mut halves = split_even(&combined, 2).into_iter();
                    let n1 = Node {
                        level,
                        entries: halves.next().unwrap(),
                    };
                    let n2 = Node {
                        level,
                        entries: halves.next().unwrap(),
                    };
                    let p1 = store.write_node(Some(left_ptr), &n1)?;
                    let p2 = store.write_node(Some(right_ptr), &n2)?;
                    vec![
                        Entry {
                            bytes: n1.total_bytes(),
                            ptr: p1,
                        },
                        Entry {
                            bytes: n2.total_bytes(),
                            ptr: p2,
                        },
                    ]
                };
                let mut fixed = node;
                fixed.entries.splice(a..=b2, new_entries);
                path.push(PathStep {
                    page,
                    node: fixed,
                    child: 0, // unused by propagate for the bottom node
                });
                propagate(store, obj, path)?;
                continue 'outer;
            }
            let ptr = node.entries[i].ptr;
            path.push(PathStep {
                page,
                node,
                child: i,
            });
            node = store.read_node(ptr)?;
            page = Some(ptr);
            rel = inner;
        }
        return Ok(());
    }
}

/// Free every index page and leaf segment below `node` without reading
/// a single leaf page ("deletion of entire subtrees … can be completed
/// without touching a single leaf segment").
pub(crate) fn free_subtree(store: &mut ObjectStore, node: &Node) -> Result<()> {
    let ps = store.ps();
    if node.level == 1 {
        for e in &node.entries {
            store.free_pages(e.ptr, e.bytes.div_ceil(ps))?;
        }
        return Ok(());
    }
    for e in &node.entries {
        let child = store.read_node(e.ptr)?;
        free_subtree(store, &child)?;
        store.free_node(e.ptr)?;
    }
    Ok(())
}
