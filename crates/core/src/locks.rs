//! Byte-range locking (§4.5).
//!
//! "Concurrency can be handled either by locking the root of the large
//! object or, for finer granularity, the byte range affected by each
//! operation \[Care86\]." [`RangeLockManager`] implements the
//! finer-granularity option: shared/exclusive locks on byte ranges of
//! an object, held by transactions until explicitly released (strict
//! two-phase locking). Operations that shift offsets (insert, delete,
//! append) lock from their start offset **to the end of the object**
//! (`start..MAX`), since every byte to the right logically moves —
//! the standard treatment for positional data.
//!
//! The manager is a standalone component: the single-writer
//! [`ObjectStore`](crate::ObjectStore) does not call it internally
//! (the paper's prototype "runs on a single process, with no support
//! for transactions"); a multi-client layer acquires locks before
//! invoking operations, as the tests demonstrate.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eos_obs::{Counter, Histogram, Metrics, PipeKind};
use parking_lot::{LockClass, TrackedCondvar, TrackedMutex};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared — byte-range reads.
    Shared,
    /// Exclusive — replace/insert/delete/append.
    Exclusive,
}

/// A transaction identity.
pub type TxnId = u64;

#[derive(Debug, Clone, Copy)]
struct Held {
    txn: TxnId,
    lo: u64,
    hi: u64, // exclusive; u64::MAX = to end of object
    mode: LockMode,
}

fn overlaps(a: &Held, lo: u64, hi: u64) -> bool {
    a.lo < hi && lo < a.hi
}

fn compatible(a: &Held, txn: TxnId, lo: u64, hi: u64, mode: LockMode) -> bool {
    a.txn == txn || !overlaps(a, lo, hi) || (a.mode == LockMode::Shared && mode == LockMode::Shared)
}

#[derive(Default)]
struct State {
    /// Held locks per object.
    held: HashMap<u64, Vec<Held>>,
}

/// Pre-resolved instrument handles ([`RangeLockManager::set_metrics`]).
/// Cloned out of the registration mutex *before* the state latch is
/// taken and recorded through pure atomics after it is released, so
/// lock bookkeeping never nests latches.
#[derive(Clone)]
struct LockObs {
    /// Locks granted (both `try_lock` successes and blocking `lock`
    /// grants) — the counter the MVCC tests pin at zero for readers.
    acquired: Counter,
    /// Acquisition attempts that found an incompatible holder
    /// (`try_lock` denials and `lock` calls that had to wait).
    conflicts: Counter,
    /// `lock` calls that actually blocked.
    blocks: Counter,
    /// Microseconds blocked, per blocking `lock` call.
    wait_us: Histogram,
    /// The eos-trace domain: blocking waits emit `lock.block`
    /// begin/end pipeline events (trace id = the waiting txn) and feed
    /// the stall watchdog.
    metrics: Metrics,
}

struct Shared {
    // lock-class: state = locks.state rank = 20 io = forbidden
    state: TrackedMutex<State>,
    cv: TrackedCondvar,
    // lock-class: obs = locks.obs rank = 25 io = forbidden
    obs: TrackedMutex<Option<LockObs>>,
}

impl Default for Shared {
    fn default() -> Shared {
        Shared {
            state: TrackedMutex::new(LockClass::forbids_io("locks.state"), State::default()),
            cv: TrackedCondvar::new(),
            obs: TrackedMutex::new(LockClass::forbids_io("locks.obs"), None),
        }
    }
}

/// `Duration` → whole microseconds, saturating.
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A shared/exclusive byte-range lock manager with blocking acquisition
/// and deadlock-avoiding try-acquire.
///
/// ```
/// use eos_core::locks::{LockMode, RangeLockManager};
///
/// let lm = RangeLockManager::new();
/// lm.lock(1, 42, 0, 100, LockMode::Shared);          // txn 1 reads
/// assert!(lm.try_lock(2, 42, 50, 60, LockMode::Shared));
/// assert!(!lm.try_lock(3, 42, 10, 20, LockMode::Exclusive));
/// lm.release_all(1);
/// lm.release_all(2);
/// assert!(lm.try_lock(3, 42, 10, 20, LockMode::Exclusive));
/// ```
#[derive(Clone, Default)]
pub struct RangeLockManager {
    inner: Arc<Shared>,
}

impl RangeLockManager {
    /// An empty lock manager.
    pub fn new() -> RangeLockManager {
        RangeLockManager::default()
    }

    /// Route grant/conflict/block counts and the blocked-time histogram
    /// into `metrics` (`locks.acquired`, `locks.conflicts`,
    /// `locks.blocks`, `locks.wait_us`).
    pub fn set_metrics(&self, metrics: &Metrics) {
        *self.inner.obs.lock() = Some(LockObs {
            acquired: metrics.counter("locks.acquired"),
            conflicts: metrics.counter("locks.conflicts"),
            blocks: metrics.counter("locks.blocks"),
            wait_us: metrics.histogram("locks.wait_us"),
            metrics: metrics.clone(),
        });
    }

    fn obs(&self) -> Option<LockObs> {
        self.inner.obs.lock().clone()
    }

    /// Try to acquire a lock without blocking. Returns `false` on
    /// conflict.
    pub fn try_lock(&self, txn: TxnId, object: u64, lo: u64, hi: u64, mode: LockMode) -> bool {
        assert!(lo < hi, "empty lock range");
        let obs = self.obs();
        let granted = {
            let mut st = self.inner.state.lock();
            let held = st.held.entry(object).or_default();
            if held.iter().all(|h| compatible(h, txn, lo, hi, mode)) {
                held.push(Held { txn, lo, hi, mode });
                true
            } else {
                false
            }
        };
        if let Some(o) = &obs {
            if granted {
                o.acquired.inc();
            } else {
                o.conflicts.inc();
            }
        }
        granted
    }

    /// Acquire a lock, blocking until it is grantable.
    pub fn lock(&self, txn: TxnId, object: u64, lo: u64, hi: u64, mode: LockMode) {
        assert!(lo < hi, "empty lock range");
        let obs = self.obs();
        let t0 = Instant::now();
        let mut waited = false;
        {
            let mut st = self.inner.state.lock();
            loop {
                let held = st.held.entry(object).or_default();
                if held.iter().all(|h| compatible(h, txn, lo, hi, mode)) {
                    held.push(Held { txn, lo, hi, mode });
                    break;
                }
                if !waited {
                    waited = true;
                    // Mark the block on the pipeline timeline as it
                    // begins (the matching end is emitted after the
                    // grant, outside the state latch).
                    if let Some(o) = &obs {
                        o.metrics.pipe_event(PipeKind::Begin, "lock.block", txn, 0);
                    }
                }
                self.inner.cv.wait(&mut st);
            }
        }
        if let Some(o) = &obs {
            o.acquired.inc();
            if waited {
                o.conflicts.inc();
                o.blocks.inc();
                let blocked = t0.elapsed();
                o.wait_us.record(duration_us(blocked));
                o.metrics.pipe_event(PipeKind::End, "lock.block", txn, 0);
                o.metrics.check_stall(
                    "lock.block",
                    txn,
                    0,
                    u64::try_from(blocked.as_nanos()).unwrap_or(u64::MAX),
                );
            }
        }
    }

    /// Lock the whole object (the coarse option the paper mentions).
    pub fn lock_object(&self, txn: TxnId, object: u64, mode: LockMode) {
        self.lock(txn, object, 0, u64::MAX, mode);
    }

    /// Lock `start..end-of-object` — what the offset-shifting
    /// operations (insert/delete/append) need.
    pub fn lock_tail(&self, txn: TxnId, object: u64, start: u64, mode: LockMode) {
        self.lock(txn, object, start, u64::MAX, mode);
    }

    /// Release every lock the transaction holds (commit or abort —
    /// strict 2PL releases at the end).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.inner.state.lock();
        for held in st.held.values_mut() {
            held.retain(|h| h.txn != txn);
        }
        st.held.retain(|_, v| !v.is_empty());
        self.inner.cv.notify_all();
    }

    /// Locks currently held on an object (diagnostics).
    pub fn held_count(&self, object: u64) -> usize {
        self.inner
            .state
            .lock()
            .held
            .get(&object)
            .map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn shared_locks_coexist_exclusive_do_not() {
        let lm = RangeLockManager::new();
        assert!(lm.try_lock(1, 7, 0, 100, LockMode::Shared));
        assert!(lm.try_lock(2, 7, 50, 150, LockMode::Shared));
        assert!(!lm.try_lock(3, 7, 50, 60, LockMode::Exclusive));
        // Disjoint exclusive is fine.
        assert!(lm.try_lock(3, 7, 150, 200, LockMode::Exclusive));
        // Other objects are independent.
        assert!(lm.try_lock(3, 8, 0, 100, LockMode::Exclusive));
        lm.release_all(1);
        lm.release_all(2);
        assert!(lm.try_lock(3, 7, 50, 60, LockMode::Exclusive));
    }

    #[test]
    fn reacquire_by_same_txn_is_compatible() {
        let lm = RangeLockManager::new();
        assert!(lm.try_lock(1, 7, 0, 100, LockMode::Exclusive));
        assert!(lm.try_lock(1, 7, 50, 150, LockMode::Exclusive));
        assert_eq!(lm.held_count(7), 2);
        lm.release_all(1);
        assert_eq!(lm.held_count(7), 0);
    }

    #[test]
    fn tail_locks_conflict_with_everything_to_the_right() {
        let lm = RangeLockManager::new();
        lm.lock_tail(1, 7, 1000, LockMode::Exclusive);
        assert!(!lm.try_lock(2, 7, 5000, 5001, LockMode::Shared));
        assert!(lm.try_lock(2, 7, 0, 1000, LockMode::Shared));
    }

    #[test]
    fn blocking_lock_wakes_on_release() {
        let lm = RangeLockManager::new();
        lm.lock(1, 7, 0, 100, LockMode::Exclusive);
        let lm2 = lm.clone();
        let acquired = Arc::new(AtomicU64::new(0));
        let acquired2 = acquired.clone();
        let t = std::thread::spawn(move || {
            lm2.lock(2, 7, 0, 10, LockMode::Exclusive);
            acquired2.store(1, Ordering::SeqCst);
            lm2.release_all(2);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(acquired.load(Ordering::SeqCst), 0, "still blocked");
        lm.release_all(1);
        t.join().unwrap();
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn metrics_capture_conflicts_blocks_and_waits() {
        let m = Metrics::new();
        let lm = RangeLockManager::new();
        lm.set_metrics(&m);
        assert!(lm.try_lock(1, 7, 0, 100, LockMode::Exclusive));
        assert!(!lm.try_lock(2, 7, 0, 10, LockMode::Shared), "conflict");
        let lm2 = lm.clone();
        let t = std::thread::spawn(move || {
            lm2.lock(2, 7, 0, 10, LockMode::Shared);
            lm2.release_all(2);
        });
        std::thread::sleep(Duration::from_millis(50));
        lm.release_all(1);
        t.join().unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.counter("locks.conflicts"), Some(2));
        assert_eq!(snap.counter("locks.blocks"), Some(1));
        let wait = snap.histogram("locks.wait_us").unwrap();
        assert_eq!(wait.count, 1);
        assert!(wait.sum > 0, "blocked for a measurable time");
    }

    #[test]
    fn concurrent_readers_one_writer_stress() {
        let lm = RangeLockManager::new();
        let counter = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for txn in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            threads.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let lo = (txn * 37 + i * 13) % 1000;
                    let hi = lo + 1 + (i % 50);
                    let mode = if (txn + i) % 4 == 0 {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    lm.lock(txn, 1, lo, hi, mode);
                    counter.fetch_add(1, Ordering::SeqCst);
                    lm.release_all(txn);
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8 * 200);
        assert_eq!(lm.held_count(1), 0);
    }
}
