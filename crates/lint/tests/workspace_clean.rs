//! The real workspace must lint clean — this is the same gate CI runs
//! (`eos lint`), expressed as a test so `cargo test` alone catches a
//! violation before the CI script does.

use std::path::Path;

use eos_lint::{lint_workspace, Options};

#[test]
fn the_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let report = lint_workspace(root, &Options::default()).unwrap();
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        report.render_table()
    );
    assert!(report.files_scanned > 0);
    assert!(report.anchors_checked >= eos_lint::MIN_ANCHORS);
}
