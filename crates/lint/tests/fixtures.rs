//! Rule-by-rule fixture tests (satellite S6): each lint rule must fire
//! exactly once on a workspace with exactly one seeded violation, and
//! not at all on the clean fixture. This pins both directions — a rule
//! that stops firing is as much a regression as one that over-fires.

use std::fs;
use std::path::{Path, PathBuf};

use eos_lint::report::{Rule, Severity};
use eos_lint::{lint_workspace, Options, MIN_ANCHORS};

/// A throwaway workspace under the system temp dir, removed on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> TempWs {
        let root =
            std::env::temp_dir().join(format!("eos-lint-fixture-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        TempWs { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    fn append(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(content);
        fs::write(path, text).unwrap();
    }

    fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Build a workspace the linter reports as clean: every scanned
/// directory and drift source exists, the ratchet is at zero, and
/// `MIN_ANCHORS + 1` anchors pair up (the +1 keeps the anchor-count
/// floor satisfied when a test breaks exactly one pair).
fn clean_ws(tag: &str) -> TempWs {
    let ws = TempWs::new(tag);
    let mut object = String::from("//! fixture codec\n");
    let mut doc = String::from("# FORMAT fixture\n");
    for i in 0..=MIN_ANCHORS {
        object.push_str(&format!(
            "pub const A{i}: u32 = {i}; // format-anchor: A{i}\n"
        ));
        doc.push_str(&format!("<!-- anchor: A{i} = {i} -->\n"));
    }
    ws.write("crates/core/src/object.rs", &object);
    ws.write("FORMAT.md", &doc);
    ws.write("crates/core/src/node.rs", "pub fn node() {}\n");
    // The pinned lockdep crates (eos-core, eos-pager) must declare at
    // least one lock class each, with a matching DESIGN.md §13 anchor,
    // and eos-core must declare at least one durability class with its
    // §15 anchor, FORMAT.md count anchor, and paired constant.
    ws.write(
        "crates/core/src/wal.rs",
        "pub struct Wal {\n    \
         // lock-class: log = core.wal rank = 10 io = forbidden\n    \
         log: Mutex<Vec<u8>>,\n}\n\
         // durability-class: undo-image requires = none\n\
         pub const DURABILITY_CLASSES: u32 = 1; // format-anchor: DURABILITY_CLASSES\n",
    );
    ws.write("crates/core/src/durable.rs", "pub fn durable() {}\n");
    ws.write("crates/core/src/store.rs", "pub fn store() {}\n");
    ws.write("crates/buddy/src/dir.rs", "pub fn dir() {}\n");
    ws.write("src/catalog.rs", "pub fn catalog() {}\n");
    ws.write(
        "crates/pager/src/lib.rs",
        "pub struct Vol {\n    \
         // lock-class: state = pager.volume rank = 80 io = allowed\n    \
         state: Mutex<u8>,\n}\n",
    );
    ws.write("crates/check/src/lib.rs", "pub fn check() {}\n");
    ws.write("crates/obs/src/lib.rs", "pub fn obs() {}\n");
    ws.write(
        "DESIGN.md",
        "# DESIGN fixture\n\n## 13. Lock hierarchy\n\n\
         <!-- lock-class: core.wal rank = 10 io = forbidden -->\n\
         <!-- lock-class: pager.volume rank = 80 io = allowed -->\n\n\
         ## 15. Durability\n\n\
         <!-- durability-class: undo-image requires = none -->\n",
    );
    ws.append("FORMAT.md", "<!-- anchor: DURABILITY_CLASSES = 1 -->\n");
    ws.write(
        "lint.ratchet",
        "eos-buddy 0\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n\
         lockorder:eos-core 0\nlockorder:eos-pager 0\n\
         durability:eos-core 0\n",
    );
    ws
}

/// Declare a second durability class (`committed-page`, ordered after
/// `undo-image`) in the unpinned pager fixture crate, keeping the §15
/// anchors and the FORMAT.md class count in step. L6 tests seed their
/// violations in eos-pager so the `durability:eos-core` pin does not
/// double-fire, mirroring what `seed_buddy_classes` does for L5.
fn seed_committed_page_class(ws: &TempWs) {
    ws.append(
        "crates/pager/src/lib.rs",
        "// durability-class: committed-page requires = undo-image\n",
    );
    ws.append(
        "DESIGN.md",
        "<!-- durability-class: committed-page requires = undo-image -->\n",
    );
    for (rel, from, to) in [
        (
            "FORMAT.md",
            "DURABILITY_CLASSES = 1",
            "DURABILITY_CLASSES = 2",
        ),
        (
            "crates/core/src/wal.rs",
            "DURABILITY_CLASSES: u32 = 1",
            "DURABILITY_CLASSES: u32 = 2",
        ),
    ] {
        let path = ws.root().join(rel);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains(from), "{rel} lost its class-count marker");
        fs::write(path, text.replace(from, to)).unwrap();
    }
}

/// Seed two lock classes in the (unpinned) buddy fixture crate, with
/// matching DESIGN.md anchors, so L5 tests can exercise orderings
/// without tripping the eos-core/eos-pager ratchet pins as a second
/// finding.
fn seed_buddy_classes(ws: &TempWs) {
    ws.write(
        "crates/buddy/src/dir.rs",
        "pub struct Pair {\n    \
         // lock-class: lo = buddy.lo rank = 40 io = forbidden\n    \
         lo: Mutex<u8>,\n    \
         // lock-class: hi = buddy.hi rank = 50 io = forbidden\n    \
         hi: Mutex<u8>,\n}\n",
    );
    ws.append(
        "DESIGN.md",
        "<!-- lock-class: buddy.lo rank = 40 io = forbidden -->\n\
         <!-- lock-class: buddy.hi rank = 50 io = forbidden -->\n",
    );
}

fn lint(ws: &TempWs) -> eos_lint::report::Report {
    lint_workspace(ws.root(), &Options::default()).unwrap()
}

#[test]
fn clean_fixture_is_clean() {
    let ws = clean_ws("clean");
    let report = lint(&ws);
    assert!(
        report.is_clean(),
        "clean fixture produced findings:\n{}",
        report.render_table()
    );
    assert!(report.anchors_checked > MIN_ANCHORS);
}

#[test]
fn panic_rule_fires_once_in_a_strict_file() {
    let ws = clean_ws("panic");
    ws.append(
        "crates/core/src/object.rs",
        "pub fn decode(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::PanicPath);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/core/src/object.rs:"));
}

#[test]
fn annotated_strict_site_is_suppressed() {
    let ws = clean_ws("panic-allow");
    ws.append(
        "crates/core/src/object.rs",
        "pub fn decode(x: Option<u32>) -> u32 {\n    \
         // lint: allow(panic, reason = \"fixture: length checked by caller\")\n    \
         x.unwrap()\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.sites_annotated, 1);
}

#[test]
fn ratchet_rule_fires_once_on_a_new_site() {
    let ws = clean_ws("ratchet");
    ws.append(
        "crates/core/src/store.rs",
        "pub fn lookup(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Ratchet);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.location, "eos-core");
    assert!(f.detail.contains("ratchet allows 0"));
}

#[test]
fn ratchet_loosening_is_rejected_tightening_is_not() {
    let ws = clean_ws("ratchet-dir");
    // The budget may sit above the observed count (tighten hint, still
    // clean) but observed may never exceed it.
    ws.write(
        "lint.ratchet",
        "eos-buddy 3\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n\
         lockorder:eos-core 0\nlockorder:eos-pager 0\n\
         durability:eos-core 0\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    let info: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Ratchet)
        .collect();
    assert_eq!(info.len(), 1);
    assert!(info[0].detail.contains("tighten"));
}

#[test]
fn latch_rule_fires_once_on_io_under_guard() {
    let ws = clean_ws("latch");
    ws.append(
        "crates/core/src/store.rs",
        "pub fn flush(&self) {\n    \
         let g = self.inner.lock();\n    \
         self.volume.write_pages(0, &g.dirty);\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Latch);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/core/src/store.rs:"));
}

#[test]
fn drift_rule_fires_once_on_a_changed_constant() {
    let ws = clean_ws("drift");
    // Flip one constant's value without touching FORMAT.md — the exact
    // failure mode the rule exists for.
    let path = "crates/core/src/object.rs";
    let src = fs::read_to_string(ws.root().join(path)).unwrap();
    let src = src.replace(
        "pub const A1: u32 = 1; // format-anchor: A1",
        "pub const A1: u32 = 999; // format-anchor: A1",
    );
    ws.write(path, &src);
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::FormatDrift);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.detail.contains("`A1` drifted"), "{}", f.detail);
}

#[test]
fn deleting_anchors_cannot_defuse_the_drift_gate() {
    let ws = clean_ws("drift-floor");
    ws.write("FORMAT.md", "# FORMAT fixture with no anchors\n");
    let mut object = String::from("//! fixture codec, anchors stripped\n");
    for i in 0..=MIN_ANCHORS {
        object.push_str(&format!("pub const A{i}: u32 = {i};\n"));
    }
    ws.write("crates/core/src/object.rs", &object);
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == Rule::FormatDrift && f.detail.contains("at least")));
}

#[test]
fn lockorder_two_lock_cycle_fires_once() {
    let ws = clean_ws("lock-cycle");
    seed_buddy_classes(&ws);
    // AB in rank order is fine; BA is the inversion — one finding, on
    // the out-of-rank acquisition, and the cycle safety net stays
    // quiet because the offending edge is already flagged.
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn ab(&self) {\n        let a = self.lo.lock();\n        \
         let b = self.hi.lock(); // lint: allow(latch, reason = \"fixture\")\n        \
         drop(b);\n        drop(a);\n    }\n    \
         pub fn ba(&self) {\n        let b = self.hi.lock();\n        \
         let a = self.lo.lock(); // lint: allow(latch, reason = \"fixture\")\n        \
         drop(a);\n        drop(b);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::LockOrder);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/buddy/src/dir.rs:"));
    assert!(
        f.detail.contains("ranks must strictly increase"),
        "{}",
        f.detail
    );
    assert!(f.detail.contains("in `ba`"), "{}", f.detail);
}

#[test]
fn lockorder_interprocedural_inversion_fires_once() {
    let ws = clean_ws("lock-inter");
    seed_buddy_classes(&ws);
    // `outer` never touches `lo` itself — the inversion only exists
    // through the call graph.
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn helper(&self) {\n        let g = self.lo.lock();\n        \
         drop(g);\n    }\n    \
         pub fn outer(&self) {\n        let a = self.hi.lock();\n        \
         self.helper();\n        drop(a);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::LockOrder);
    assert!(f.detail.contains("via `helper`"), "{}", f.detail);
    assert!(f.detail.contains("in `outer`"), "{}", f.detail);
}

#[test]
fn lockorder_io_under_latch_fires_once_through_two_calls() {
    let ws = clean_ws("lock-io");
    seed_buddy_classes(&ws);
    // top → mid → leaf: only leaf does the volume I/O, only top holds
    // a latch. The transitive-I/O bit has to flow two hops up.
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn leaf(&self) {\n        self.volume.write_pages(0, &[]);\n    }\n    \
         pub fn mid(&self) {\n        self.leaf();\n    }\n    \
         pub fn top(&self) {\n        let g = self.lo.lock();\n        \
         self.mid();\n        drop(g);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::LockOrder);
    assert!(
        f.detail.contains("volume I/O reachable via `mid`"),
        "{}",
        f.detail
    );
    assert!(f.detail.contains("`buddy.lo`"), "{}", f.detail);
}

#[test]
fn lockorder_clean_hierarchy_records_edges_and_classes() {
    let ws = clean_ws("lock-edges");
    seed_buddy_classes(&ws);
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn nest(&self) {\n        let a = self.lo.lock();\n        \
         let b = self.hi.lock(); // lint: allow(latch, reason = \"fixture\")\n        \
         drop(b);\n        drop(a);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.lock_classes.len(), 4);
    assert!(report
        .lock_edges
        .iter()
        .any(|e| e.from == "buddy.lo" && e.to == "buddy.hi"));
    // The lock tables survive into the machine-readable surfaces.
    assert!(report.to_json().contains("\"lock_edges\""));
    assert!(report.to_dot().contains("\"buddy.lo\" -> \"buddy.hi\""));
}

#[test]
fn lockorder_annotation_suppresses_a_finding() {
    let ws = clean_ws("lock-allow");
    seed_buddy_classes(&ws);
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn ba(&self) {\n        let b = self.hi.lock();\n        \
         // lint: allow(latch, reason = \"fixture: startup is single-threaded\")\n        \
         let a = self.lo.lock(); // lint: allow(lockorder, reason = \"fixture: startup is single-threaded\")\n        \
         drop(a);\n        drop(b);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn deleting_lock_decls_cannot_defuse_the_lockorder_gate() {
    let ws = clean_ws("lock-defuse");
    ws.write(
        "crates/core/src/wal.rs",
        "pub struct Wal {\n    log: Mutex<Vec<u8>>,\n}\n",
    );
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockOrder && f.detail.contains("must not be defused")),
        "{}",
        report.render_table()
    );
}

#[test]
fn deleting_lockorder_pins_cannot_defuse_the_gate() {
    let ws = clean_ws("lock-pins");
    ws.write(
        "lint.ratchet",
        "eos-buddy 0\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n",
    );
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockOrder
                && f.detail.contains("missing `lockorder:eos-core` pin")),
        "{}",
        report.render_table()
    );
}

#[test]
fn update_ratchet_writes_observed_counts() {
    let ws = clean_ws("update");
    ws.append(
        "crates/core/src/store.rs",
        "pub fn lookup(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let opts = Options {
        update_ratchet: true,
        ..Options::default()
    };
    lint_workspace(ws.root(), &opts).unwrap();
    let text = fs::read_to_string(ws.root().join("lint.ratchet")).unwrap();
    assert!(text.contains("eos-core 1"), "{text}");
    // And the rewritten ratchet makes the same workspace clean again.
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}

// ---- L6: durability ordering (eos-crashdep) -----------------------------

#[test]
fn durability_unsealed_write_fires_once() {
    let ws = clean_ws("dura-unsealed");
    seed_committed_page_class(&ws);
    // A committed-page overwrite with no undo-image seal anywhere
    // earlier in the function — the flagship L6 finding.
    ws.append(
        "crates/pager/src/lib.rs",
        "impl Vol {\n    pub fn publish(&self) {\n        \
         // durability: mutates(committed-page)\n        \
         self.disk.write_pages(0, &[]);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Durability);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/pager/src/lib.rs:"));
    assert!(
        f.detail
            .contains("`committed-page` write reachable before its `undo-image` seal"),
        "{}",
        f.detail
    );
    assert!(f.detail.contains("in `publish`"), "{}", f.detail);
}

#[test]
fn durability_seal_before_write_is_clean() {
    let ws = clean_ws("dura-sealed");
    seed_committed_page_class(&ws);
    // Same overwrite, but the undo image is forced first: clean, and
    // both contract sites land in the report's machine surfaces.
    ws.append(
        "crates/pager/src/lib.rs",
        "impl Vol {\n    pub fn publish(&self) {\n        \
         // durability: seals(undo-image)\n        \
         self.disk.sync();\n        \
         // durability: mutates(committed-page)\n        \
         self.disk.write_pages(0, &[]);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.durability_classes.len(), 2);
    assert_eq!(report.durability_contracts.len(), 2);
    assert!(report.to_json().contains("\"durability_contracts\""));
    assert!(report.to_durability_dot().contains("committed-page"));
}

#[test]
fn durability_allow_suppresses_a_finding() {
    let ws = clean_ws("dura-allow");
    seed_committed_page_class(&ws);
    ws.append(
        "crates/pager/src/lib.rs",
        "impl Vol {\n    pub fn publish(&self) {\n        \
         // lint: allow(durability, reason = \"fixture: virgin region, recovery rewrites it\")\n        \
         self.disk.write_pages(0, &[]); // durability: mutates(committed-page)\n    }\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn durability_dangling_annotation_fires_once() {
    let ws = clean_ws("dura-dangling");
    // The annotation's own line and the next bind to no call site.
    ws.append(
        "crates/pager/src/lib.rs",
        "impl Vol {\n    pub fn noop(&self) {\n        \
         // durability: mutates(undo-image)\n        \
         let _x = 1;\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Durability);
    assert!(f.detail.contains("binds to no call site"), "{}", f.detail);
}

#[test]
fn durability_undeclared_class_fires_once() {
    let ws = clean_ws("dura-undeclared");
    ws.append(
        "crates/pager/src/lib.rs",
        "impl Vol {\n    pub fn publish(&self) {\n        \
         // durability: mutates(flux-capacitor)\n        \
         self.disk.write_pages(0, &[]);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Durability);
    assert!(f.detail.contains("names undeclared class"), "{}", f.detail);
}

#[test]
fn durability_superblock_write_needs_a_slot_witness() {
    let ws = clean_ws("dura-slot");
    // The alternating-slot class: a publish without a `1 - live` slot
    // computation in the same function may clobber the live superblock.
    ws.append(
        "crates/pager/src/lib.rs",
        "// durability-class: superblock requires = none\n\
         impl Vol {\n    pub fn publish_sb(&self) {\n        \
         // durability: mutates(superblock)\n        \
         self.disk.write_pages(0, &[]);\n    }\n}\n",
    );
    ws.append(
        "DESIGN.md",
        "<!-- durability-class: superblock requires = none -->\n",
    );
    for (rel, from, to) in [
        (
            "FORMAT.md",
            "DURABILITY_CLASSES = 1",
            "DURABILITY_CLASSES = 2",
        ),
        (
            "crates/core/src/wal.rs",
            "DURABILITY_CLASSES: u32 = 1",
            "DURABILITY_CLASSES: u32 = 2",
        ),
    ] {
        let path = ws.root().join(rel);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(path, text.replace(from, to)).unwrap();
    }
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Durability);
    assert!(f.detail.contains("live slot"), "{}", f.detail);

    // Deriving the target from the live slot satisfies the witness.
    let path = ws.root().join("crates/pager/src/lib.rs");
    let text = fs::read_to_string(&path).unwrap();
    let text = text.replace(
        "pub fn publish_sb(&self) {",
        "pub fn publish_sb(&self) {\n        let _slot = 1 - self.live;",
    );
    fs::write(path, text).unwrap();
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn durability_class_doc_drift_fires_once() {
    let ws = clean_ws("dura-drift");
    seed_committed_page_class(&ws);
    // DESIGN.md §15 claims a different ordering than the source decl
    // (drifting the pager-declared class keeps the eos-core pin out of
    // the picture, so the drift is the only finding).
    let path = ws.root().join("DESIGN.md");
    let text = fs::read_to_string(&path).unwrap();
    let text = text.replace(
        "<!-- durability-class: committed-page requires = undo-image -->",
        "<!-- durability-class: committed-page requires = none -->",
    );
    fs::write(path, text).unwrap();
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Durability);
    assert!(f.detail.contains("drifted"), "{}", f.detail);
}

#[test]
fn deleting_durability_decls_cannot_defuse_the_gate() {
    let ws = clean_ws("dura-defuse");
    let path = ws.root().join("crates/core/src/wal.rs");
    let text = fs::read_to_string(&path).unwrap();
    let text = text.replace("// durability-class: undo-image requires = none\n", "");
    fs::write(path, text).unwrap();
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::Durability && f.detail.contains("must not be defused")),
        "{}",
        report.render_table()
    );
}

#[test]
fn deleting_durability_pins_cannot_defuse_the_gate() {
    let ws = clean_ws("dura-pins");
    ws.write(
        "lint.ratchet",
        "eos-buddy 0\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n\
         lockorder:eos-core 0\nlockorder:eos-pager 0\n",
    );
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| f.rule == Rule::Durability
            && f.detail.contains("missing `durability:eos-core` pin")),
        "{}",
        report.render_table()
    );
}

#[test]
fn missing_class_count_anchor_fires_once() {
    let ws = clean_ws("dura-anchor");
    // Drop only the FORMAT.md count anchor (the paired constant keeps
    // its own `format-anchor:` tag, so L4 fires too — both sides must
    // point at the gap).
    let path = ws.root().join("FORMAT.md");
    let text = fs::read_to_string(&path).unwrap();
    let text = text.replace("<!-- anchor: DURABILITY_CLASSES = 1 -->\n", "");
    fs::write(path, text).unwrap();
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| f.rule == Rule::Durability
            && f.detail.contains("missing `DURABILITY_CLASSES` anchor")),
        "{}",
        report.render_table()
    );
}

#[test]
fn update_ratchet_carries_durability_pins_forward() {
    let ws = clean_ws("dura-update");
    let opts = Options {
        update_ratchet: true,
        ..Options::default()
    };
    lint_workspace(ws.root(), &opts).unwrap();
    let text = fs::read_to_string(ws.root().join("lint.ratchet")).unwrap();
    assert!(text.contains("durability:eos-core 0"), "{text}");
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}
