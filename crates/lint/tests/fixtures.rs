//! Rule-by-rule fixture tests (satellite S6): each lint rule must fire
//! exactly once on a workspace with exactly one seeded violation, and
//! not at all on the clean fixture. This pins both directions — a rule
//! that stops firing is as much a regression as one that over-fires.

use std::fs;
use std::path::{Path, PathBuf};

use eos_lint::report::{Rule, Severity};
use eos_lint::{lint_workspace, Options, MIN_ANCHORS};

/// A throwaway workspace under the system temp dir, removed on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> TempWs {
        let root =
            std::env::temp_dir().join(format!("eos-lint-fixture-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        TempWs { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, content).unwrap();
    }

    fn append(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str(content);
        fs::write(path, text).unwrap();
    }

    fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Build a workspace the linter reports as clean: every scanned
/// directory and drift source exists, the ratchet is at zero, and
/// `MIN_ANCHORS + 1` anchors pair up (the +1 keeps the anchor-count
/// floor satisfied when a test breaks exactly one pair).
fn clean_ws(tag: &str) -> TempWs {
    let ws = TempWs::new(tag);
    let mut object = String::from("//! fixture codec\n");
    let mut doc = String::from("# FORMAT fixture\n");
    for i in 0..=MIN_ANCHORS {
        object.push_str(&format!(
            "pub const A{i}: u32 = {i}; // format-anchor: A{i}\n"
        ));
        doc.push_str(&format!("<!-- anchor: A{i} = {i} -->\n"));
    }
    ws.write("crates/core/src/object.rs", &object);
    ws.write("FORMAT.md", &doc);
    ws.write("crates/core/src/node.rs", "pub fn node() {}\n");
    // The pinned lockdep crates (eos-core, eos-pager) must declare at
    // least one lock class each, with a matching DESIGN.md §13 anchor.
    ws.write(
        "crates/core/src/wal.rs",
        "pub struct Wal {\n    \
         // lock-class: log = core.wal rank = 10 io = forbidden\n    \
         log: Mutex<Vec<u8>>,\n}\n",
    );
    ws.write("crates/core/src/durable.rs", "pub fn durable() {}\n");
    ws.write("crates/core/src/store.rs", "pub fn store() {}\n");
    ws.write("crates/buddy/src/dir.rs", "pub fn dir() {}\n");
    ws.write("src/catalog.rs", "pub fn catalog() {}\n");
    ws.write(
        "crates/pager/src/lib.rs",
        "pub struct Vol {\n    \
         // lock-class: state = pager.volume rank = 80 io = allowed\n    \
         state: Mutex<u8>,\n}\n",
    );
    ws.write("crates/check/src/lib.rs", "pub fn check() {}\n");
    ws.write("crates/obs/src/lib.rs", "pub fn obs() {}\n");
    ws.write(
        "DESIGN.md",
        "# DESIGN fixture\n\n## 13. Lock hierarchy\n\n\
         <!-- lock-class: core.wal rank = 10 io = forbidden -->\n\
         <!-- lock-class: pager.volume rank = 80 io = allowed -->\n",
    );
    ws.write(
        "lint.ratchet",
        "eos-buddy 0\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n\
         lockorder:eos-core 0\nlockorder:eos-pager 0\n",
    );
    ws
}

/// Seed two lock classes in the (unpinned) buddy fixture crate, with
/// matching DESIGN.md anchors, so L5 tests can exercise orderings
/// without tripping the eos-core/eos-pager ratchet pins as a second
/// finding.
fn seed_buddy_classes(ws: &TempWs) {
    ws.write(
        "crates/buddy/src/dir.rs",
        "pub struct Pair {\n    \
         // lock-class: lo = buddy.lo rank = 40 io = forbidden\n    \
         lo: Mutex<u8>,\n    \
         // lock-class: hi = buddy.hi rank = 50 io = forbidden\n    \
         hi: Mutex<u8>,\n}\n",
    );
    ws.append(
        "DESIGN.md",
        "<!-- lock-class: buddy.lo rank = 40 io = forbidden -->\n\
         <!-- lock-class: buddy.hi rank = 50 io = forbidden -->\n",
    );
}

fn lint(ws: &TempWs) -> eos_lint::report::Report {
    lint_workspace(ws.root(), &Options::default()).unwrap()
}

#[test]
fn clean_fixture_is_clean() {
    let ws = clean_ws("clean");
    let report = lint(&ws);
    assert!(
        report.is_clean(),
        "clean fixture produced findings:\n{}",
        report.render_table()
    );
    assert!(report.anchors_checked > MIN_ANCHORS);
}

#[test]
fn panic_rule_fires_once_in_a_strict_file() {
    let ws = clean_ws("panic");
    ws.append(
        "crates/core/src/object.rs",
        "pub fn decode(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::PanicPath);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/core/src/object.rs:"));
}

#[test]
fn annotated_strict_site_is_suppressed() {
    let ws = clean_ws("panic-allow");
    ws.append(
        "crates/core/src/object.rs",
        "pub fn decode(x: Option<u32>) -> u32 {\n    \
         // lint: allow(panic, reason = \"fixture: length checked by caller\")\n    \
         x.unwrap()\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.sites_annotated, 1);
}

#[test]
fn ratchet_rule_fires_once_on_a_new_site() {
    let ws = clean_ws("ratchet");
    ws.append(
        "crates/core/src/store.rs",
        "pub fn lookup(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Ratchet);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(f.location, "eos-core");
    assert!(f.detail.contains("ratchet allows 0"));
}

#[test]
fn ratchet_loosening_is_rejected_tightening_is_not() {
    let ws = clean_ws("ratchet-dir");
    // The budget may sit above the observed count (tighten hint, still
    // clean) but observed may never exceed it.
    ws.write(
        "lint.ratchet",
        "eos-buddy 3\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n\
         lockorder:eos-core 0\nlockorder:eos-pager 0\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    let info: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::Ratchet)
        .collect();
    assert_eq!(info.len(), 1);
    assert!(info[0].detail.contains("tighten"));
}

#[test]
fn latch_rule_fires_once_on_io_under_guard() {
    let ws = clean_ws("latch");
    ws.append(
        "crates/core/src/store.rs",
        "pub fn flush(&self) {\n    \
         let g = self.inner.lock();\n    \
         self.volume.write_pages(0, &g.dirty);\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::Latch);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/core/src/store.rs:"));
}

#[test]
fn drift_rule_fires_once_on_a_changed_constant() {
    let ws = clean_ws("drift");
    // Flip one constant's value without touching FORMAT.md — the exact
    // failure mode the rule exists for.
    let path = "crates/core/src/object.rs";
    let src = fs::read_to_string(ws.root().join(path)).unwrap();
    let src = src.replace(
        "pub const A1: u32 = 1; // format-anchor: A1",
        "pub const A1: u32 = 999; // format-anchor: A1",
    );
    ws.write(path, &src);
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::FormatDrift);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.detail.contains("`A1` drifted"), "{}", f.detail);
}

#[test]
fn deleting_anchors_cannot_defuse_the_drift_gate() {
    let ws = clean_ws("drift-floor");
    ws.write("FORMAT.md", "# FORMAT fixture with no anchors\n");
    let mut object = String::from("//! fixture codec, anchors stripped\n");
    for i in 0..=MIN_ANCHORS {
        object.push_str(&format!("pub const A{i}: u32 = {i};\n"));
    }
    ws.write("crates/core/src/object.rs", &object);
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == Rule::FormatDrift && f.detail.contains("at least")));
}

#[test]
fn lockorder_two_lock_cycle_fires_once() {
    let ws = clean_ws("lock-cycle");
    seed_buddy_classes(&ws);
    // AB in rank order is fine; BA is the inversion — one finding, on
    // the out-of-rank acquisition, and the cycle safety net stays
    // quiet because the offending edge is already flagged.
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn ab(&self) {\n        let a = self.lo.lock();\n        \
         let b = self.hi.lock(); // lint: allow(latch, reason = \"fixture\")\n        \
         drop(b);\n        drop(a);\n    }\n    \
         pub fn ba(&self) {\n        let b = self.hi.lock();\n        \
         let a = self.lo.lock(); // lint: allow(latch, reason = \"fixture\")\n        \
         drop(a);\n        drop(b);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::LockOrder);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.location.starts_with("crates/buddy/src/dir.rs:"));
    assert!(
        f.detail.contains("ranks must strictly increase"),
        "{}",
        f.detail
    );
    assert!(f.detail.contains("in `ba`"), "{}", f.detail);
}

#[test]
fn lockorder_interprocedural_inversion_fires_once() {
    let ws = clean_ws("lock-inter");
    seed_buddy_classes(&ws);
    // `outer` never touches `lo` itself — the inversion only exists
    // through the call graph.
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn helper(&self) {\n        let g = self.lo.lock();\n        \
         drop(g);\n    }\n    \
         pub fn outer(&self) {\n        let a = self.hi.lock();\n        \
         self.helper();\n        drop(a);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::LockOrder);
    assert!(f.detail.contains("via `helper`"), "{}", f.detail);
    assert!(f.detail.contains("in `outer`"), "{}", f.detail);
}

#[test]
fn lockorder_io_under_latch_fires_once_through_two_calls() {
    let ws = clean_ws("lock-io");
    seed_buddy_classes(&ws);
    // top → mid → leaf: only leaf does the volume I/O, only top holds
    // a latch. The transitive-I/O bit has to flow two hops up.
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn leaf(&self) {\n        self.volume.write_pages(0, &[]);\n    }\n    \
         pub fn mid(&self) {\n        self.leaf();\n    }\n    \
         pub fn top(&self) {\n        let g = self.lo.lock();\n        \
         self.mid();\n        drop(g);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert_eq!(report.findings.len(), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.rule, Rule::LockOrder);
    assert!(
        f.detail.contains("volume I/O reachable via `mid`"),
        "{}",
        f.detail
    );
    assert!(f.detail.contains("`buddy.lo`"), "{}", f.detail);
}

#[test]
fn lockorder_clean_hierarchy_records_edges_and_classes() {
    let ws = clean_ws("lock-edges");
    seed_buddy_classes(&ws);
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn nest(&self) {\n        let a = self.lo.lock();\n        \
         let b = self.hi.lock(); // lint: allow(latch, reason = \"fixture\")\n        \
         drop(b);\n        drop(a);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.lock_classes.len(), 4);
    assert!(report
        .lock_edges
        .iter()
        .any(|e| e.from == "buddy.lo" && e.to == "buddy.hi"));
    // The lock tables survive into the machine-readable surfaces.
    assert!(report.to_json().contains("\"lock_edges\""));
    assert!(report.to_dot().contains("\"buddy.lo\" -> \"buddy.hi\""));
}

#[test]
fn lockorder_annotation_suppresses_a_finding() {
    let ws = clean_ws("lock-allow");
    seed_buddy_classes(&ws);
    ws.append(
        "crates/buddy/src/dir.rs",
        "impl Pair {\n    \
         pub fn ba(&self) {\n        let b = self.hi.lock();\n        \
         // lint: allow(latch, reason = \"fixture: startup is single-threaded\")\n        \
         let a = self.lo.lock(); // lint: allow(lockorder, reason = \"fixture: startup is single-threaded\")\n        \
         drop(a);\n        drop(b);\n    }\n}\n",
    );
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn deleting_lock_decls_cannot_defuse_the_lockorder_gate() {
    let ws = clean_ws("lock-defuse");
    ws.write(
        "crates/core/src/wal.rs",
        "pub struct Wal {\n    log: Mutex<Vec<u8>>,\n}\n",
    );
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockOrder && f.detail.contains("must not be defused")),
        "{}",
        report.render_table()
    );
}

#[test]
fn deleting_lockorder_pins_cannot_defuse_the_gate() {
    let ws = clean_ws("lock-pins");
    ws.write(
        "lint.ratchet",
        "eos-buddy 0\neos-check 0\neos-core 0\neos-obs 0\neos-pager 0\n",
    );
    let report = lint(&ws);
    assert!(!report.is_clean());
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockOrder
                && f.detail.contains("missing `lockorder:eos-core` pin")),
        "{}",
        report.render_table()
    );
}

#[test]
fn update_ratchet_writes_observed_counts() {
    let ws = clean_ws("update");
    ws.append(
        "crates/core/src/store.rs",
        "pub fn lookup(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let opts = Options {
        update_ratchet: true,
        ..Options::default()
    };
    lint_workspace(ws.root(), &opts).unwrap();
    let text = fs::read_to_string(ws.root().join("lint.ratchet")).unwrap();
    assert!(text.contains("eos-core 1"), "{text}");
    // And the rewritten ratchet makes the same workspace clean again.
    let report = lint(&ws);
    assert!(report.is_clean(), "{}", report.render_table());
}
