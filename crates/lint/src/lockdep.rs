//! Rule L5 — interprocedural lock-order analysis (`eos-lockdep`).
//!
//! L3 keeps any *single* function honest: no guard across volume I/O
//! or a second latch inside one body. L5 closes the gap L3 cannot see:
//! lock-order inversions and I/O that happen *across* calls. It is the
//! static half of eos-lockdep; the `lockdep` cargo feature (the
//! `Tracked*` wrappers in `vendor/parking_lot`) is the runtime half,
//! catching whatever slips through this pass's name-resolution blind
//! spots.
//!
//! The moving parts:
//!
//! * **Lock classes.** Every long-lived `parking_lot` field is labelled
//!   at its declaration:
//!
//!   ```text
//!   // lock-class: group = commit.group rank = 10 io = forbidden
//!   group: TrackedMutex<GroupState>,
//!   ```
//!
//!   The binding `field → class` is **per file** (two files may both
//!   call their lock `state` without colliding); the class table
//!   (`name`, `rank`, `io`) is global and must agree across files and
//!   with the `<!-- lock-class: … -->` anchors in DESIGN.md §13.
//!
//! * **Acquisitions.** A zero-argument `.lock()` / `.read()` /
//!   `.write()` whose receiver field is declared in the file is a
//!   classed acquisition. Guard lifetimes mirror L3: `let g = …;`
//!   lives to the end of its block or an explicit `drop(g)`;
//!   `g = ….lock();` is release-then-reacquire; anything else is a
//!   temporary dying at the statement end.
//!
//! * **Call graph.** Within one crate, a bare `name(…)` or `self.name(…)`
//!   call resolves to `fn name` iff exactly one function of that name
//!   exists in the crate. `recv.name(…)` with any other receiver and
//!   `path::name(…)` stay unresolved — receiver types are unknown to a
//!   lexer, and resolving them by name would confuse `map.remove(…)`
//!   with a crate function. A fixed point then propagates each
//!   function's transitively-acquired classes and whether it can reach
//!   volume I/O (`write_pages` / `read_pages` / `read_into` / `sync`).
//!
//! * **Findings.** With classes held at an event:
//!   - acquiring (directly or via a resolved call) a class of rank ≤
//!     any held class's rank — an order inversion (ranks must strictly
//!     increase along the acquisition chain);
//!   - volume I/O (direct or via a resolved call) while a class with
//!     `io = forbidden` is held — §4.5 short-duration-latch violation;
//!   - as a safety net, any cycle in the accumulated acquisition-order
//!     graph whose edges all escaped the rank check.
//!
//! Suppression: `// lint: allow(lockorder, reason = "…")` on or above
//! the offending line. Known blind spots (documented, covered by the
//! runtime witness): cross-crate calls, method calls on non-`self`
//! receivers, trait dispatch.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::annotations::{allowed_lines, AllowRule};
use crate::lexer::{lex, Kind, Tok};
use crate::test_filter::strip_test_code;

/// Methods that constitute volume I/O for this rule. `read_into` is the
/// trait's primitive (L3 predates it and tracks the derived surface).
pub const IO_METHODS: [&str; 4] = ["write_pages", "read_pages", "read_into", "sync"];

/// One source file handed to the analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative display path (`crates/core/src/….rs`).
    pub path: String,
    /// Full source text.
    pub src: String,
}

/// One crate's worth of sources: the call-graph resolution boundary.
#[derive(Debug, Clone)]
pub struct CrateInput {
    /// Crate name as it appears in ratchet pins (`eos-core`).
    pub name: String,
    /// Production sources (tests are stripped token-wise anyway).
    pub files: Vec<SourceFile>,
}

/// A declared lock class, aggregated over every declaration site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRow {
    /// Global class name (`commit.group`).
    pub name: String,
    /// Acquisition rank: ranks must strictly increase along any chain.
    pub rank: u32,
    /// May volume I/O happen while this class is held?
    pub io_allowed: bool,
    /// First declaration site, `path:line`.
    pub decl: String,
    /// Crate the first declaration lives in.
    pub krate: String,
}

/// One observed acquisition-order edge (`from` held while `to` taken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeRow {
    /// Class held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// First witness, `path:line` (with `via …` for call-derived edges).
    pub location: String,
}

/// One L5 finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// `path:line` of the acquisition / I/O / call.
    pub location: String,
    /// What is wrong and how to fix it.
    pub detail: String,
    /// Suppressed by `// lint: allow(lockorder, …)`?
    pub annotated: bool,
    /// Crate the site lives in (for the per-crate ratchet pins).
    pub krate: String,
}

/// Everything the analysis produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Global class table, sorted by rank then name.
    pub classes: Vec<ClassRow>,
    /// Acquisition-order edges, first witness each, sorted by rank.
    pub edges: Vec<EdgeRow>,
    /// Findings (rank inversions, I/O under forbidden class, declaration
    /// and DESIGN.md-anchor problems, cycles).
    pub sites: Vec<LockSite>,
}

impl Analysis {
    /// Unannotated findings attributed to `krate` (the pin quantity).
    pub fn unannotated_in(&self, krate: &str) -> usize {
        self.sites
            .iter()
            .filter(|s| !s.annotated && s.krate == krate)
            .count()
    }

    /// Classes first declared in `krate` (the anti-defusal quantity).
    pub fn classes_in(&self, krate: &str) -> usize {
        self.classes.iter().filter(|c| c.krate == krate).count()
    }
}

// ---------------------------------------------------------------------
// Declaration parsing
// ---------------------------------------------------------------------

/// A parsed `// lock-class:` declaration comment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Decl {
    field: String,
    class: String,
    rank: u32,
    io_allowed: bool,
    line: u32,
}

/// Parse every `lock-class:` comment in a token stream. Malformed
/// declarations are findings, not silent skips — a typo must not
/// quietly unclass a lock.
fn parse_decls(toks: &[Tok]) -> (Vec<Decl>, Vec<(u32, String)>) {
    let mut decls = Vec::new();
    let mut problems = Vec::new();
    for t in toks {
        let Kind::Comment(text) = &t.kind else {
            continue;
        };
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim()
            .trim_end_matches("*/")
            .trim();
        let Some(rest) = body.strip_prefix("lock-class:") else {
            continue;
        };
        match parse_decl_body(rest) {
            Ok((field, class, rank, io_allowed)) => decls.push(Decl {
                field,
                class,
                rank,
                io_allowed,
                line: t.line,
            }),
            Err(msg) => problems.push((t.line, msg)),
        }
    }
    (decls, problems)
}

/// `<field> = <class> rank = <N> io = forbidden|allowed`.
fn parse_decl_body(rest: &str) -> Result<(String, String, u32, bool), String> {
    let err = || {
        "malformed lock-class declaration — expected \
         `lock-class: <field> = <class> rank = <N> io = forbidden|allowed`"
            .to_string()
    };
    let mut parts = rest.split_whitespace();
    let field = parts.next().ok_or_else(err)?;
    if parts.next() != Some("=") {
        return Err(err());
    }
    let class = parts.next().ok_or_else(err)?;
    if parts.next() != Some("rank") || parts.next() != Some("=") {
        return Err(err());
    }
    let rank: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "lock-class rank must be an unsigned integer".to_string())?;
    if parts.next() != Some("io") || parts.next() != Some("=") {
        return Err(err());
    }
    let io_allowed = match parts.next() {
        Some("allowed") => true,
        Some("forbidden") => false,
        _ => return Err("lock-class io must be `forbidden` or `allowed`".to_string()),
    };
    if parts.next().is_some() {
        return Err(err());
    }
    Ok((field.to_string(), class.to_string(), rank, io_allowed))
}

/// A `<!-- lock-class: <class> rank = <N> io = … -->` anchor from
/// DESIGN.md §13.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocAnchor {
    /// Class name the doc row documents.
    pub class: String,
    /// Documented rank.
    pub rank: u32,
    /// Documented I/O policy.
    pub io_allowed: bool,
    /// 1-based line in the doc.
    pub line: u32,
}

/// Parse the doc side of the hierarchy. Malformed anchors are problems.
pub fn parse_doc_anchors(md: &str) -> (Vec<DocAnchor>, Vec<(u32, String)>) {
    let mut anchors = Vec::new();
    let mut problems = Vec::new();
    for (idx, line) in md.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let Some(start) = line.find("<!-- lock-class:") else {
            continue;
        };
        let rest = &line[start + "<!-- lock-class:".len()..];
        let Some(end) = rest.find("-->") else {
            problems.push((lineno, "unterminated lock-class anchor".to_string()));
            continue;
        };
        match parse_doc_body(rest[..end].trim()) {
            Ok((class, rank, io_allowed)) => anchors.push(DocAnchor {
                class,
                rank,
                io_allowed,
                line: lineno,
            }),
            Err(msg) => problems.push((lineno, msg)),
        }
    }
    (anchors, problems)
}

/// `<class> rank = <N> io = forbidden|allowed` (no field on the doc side).
fn parse_doc_body(rest: &str) -> Result<(String, u32, bool), String> {
    let err = || {
        "malformed doc anchor — expected \
         `<!-- lock-class: <class> rank = <N> io = forbidden|allowed -->`"
            .to_string()
    };
    let mut parts = rest.split_whitespace();
    let class = parts.next().ok_or_else(err)?;
    if parts.next() != Some("rank") || parts.next() != Some("=") {
        return Err(err());
    }
    let rank: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "lock-class anchor rank must be an unsigned integer".to_string())?;
    if parts.next() != Some("io") || parts.next() != Some("=") {
        return Err(err());
    }
    let io_allowed = match parts.next() {
        Some("allowed") => true,
        Some("forbidden") => false,
        _ => return Err("lock-class anchor io must be `forbidden` or `allowed`".to_string()),
    };
    if parts.next().is_some() {
        return Err(err());
    }
    Ok((class.to_string(), rank, io_allowed))
}

// ---------------------------------------------------------------------
// Per-function event extraction
// ---------------------------------------------------------------------

/// A class held at an event: which, and where its guard was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeldAt {
    class: usize,
    line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EvKind {
    /// A classed acquisition.
    Acquire(usize),
    /// A direct volume-I/O method call (`.write_pages(…)`, …).
    Io(String),
    /// A possibly-resolvable call (bare or on `self`).
    Call(String),
}

#[derive(Debug, Clone)]
struct Event {
    kind: EvKind,
    line: u32,
    held: Vec<HeldAt>,
}

#[derive(Debug)]
struct FnBody {
    name: String,
    file: usize,
    events: Vec<Event>,
}

/// A live guard during replay. `class: None` = an undeclared lock —
/// tracked so binding names behave, but it generates no events.
#[derive(Debug)]
struct Guard {
    name: String,
    depth: i32,
    line: u32,
    class: Option<usize>,
}

pub(crate) const KEYWORDS: [&str; 26] = [
    "if", "else", "while", "match", "for", "return", "loop", "fn", "in", "as", "move", "unsafe",
    "let", "mut", "ref", "impl", "where", "pub", "use", "type", "struct", "enum", "trait", "const",
    "static", "break",
];

/// Extract every function body in `code` (comments stripped) and replay
/// it, producing the event list with held-class snapshots.
fn extract_functions(
    code: &[&Tok],
    file: usize,
    fields: &HashMap<String, usize>,
    out: &mut Vec<FnBody>,
) {
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(Kind::Ident(name)) = code.get(i + 1).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        // Find the body's `{` — or a `;` first (trait signature).
        let mut j = i + 2;
        let open = loop {
            match code.get(j).map(|t| &t.kind) {
                None => break None,
                Some(Kind::Punct('{')) => break Some(j),
                Some(Kind::Punct(';')) => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        // Matching close brace.
        let mut depth = 0i32;
        let mut k = open;
        let close = loop {
            match code.get(k).map(|t| &t.kind) {
                None => break code.len(),
                Some(Kind::Punct('{')) => depth += 1,
                Some(Kind::Punct('}')) => {
                    depth -= 1;
                    if depth == 0 {
                        break k;
                    }
                }
                _ => {}
            }
            k += 1;
        };
        let events = replay_body(&code[open + 1..close], fields);
        out.push(FnBody {
            name: name.clone(),
            file,
            events,
        });
        i = close + 1;
    }
}

/// The receiver *field* of a `.lock()`-style call ending at `dot` (the
/// index of the `.`): the identifier directly before it, looking
/// through one `[…]` index (`slots[i].lock()` → `slots`).
fn receiver_field<'t>(code: &[&'t Tok], dot: usize) -> Option<&'t String> {
    let mut r = dot.checked_sub(1)?;
    if code[r].is_punct(']') {
        let mut depth = 0i32;
        loop {
            match &code[r].kind {
                Kind::Punct(']') => depth += 1,
                Kind::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            r = r.checked_sub(1)?;
        }
        r = r.checked_sub(1)?;
    }
    match &code[r].kind {
        Kind::Ident(name) => Some(name),
        _ => None,
    }
}

/// May the call token at `code[i]` (an identifier directly before `(`)
/// resolve within its crate? Bare `name(…)`, `self.name(…)` and
/// `Self::name(…)` may; method calls on any other receiver and any
/// other `path::name(…)` stay unresolved. Shared by L5 and L6.
pub(crate) fn call_resolvable(code: &[&Tok], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &code[p].kind) {
        Some(Kind::Punct('.')) => {
            i >= 2
                && code[i - 2].is_ident("self")
                && !matches!(
                    i.checked_sub(3).map(|p| &code[p].kind),
                    Some(Kind::Punct('.'))
                )
        }
        Some(Kind::Punct(':')) => {
            i >= 3 && code[i - 2].is_punct(':') && code[i - 3].is_ident("Self")
        }
        _ => true,
    }
}

/// Replay one function body, mirroring the L3 guard machine but with
/// class attribution, and record acquisition / I/O / call events with
/// the classes held at each.
fn replay_body(code: &[&Tok], fields: &HashMap<String, usize>) -> Vec<Event> {
    let mut events = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut known: Vec<(String, i32)> = Vec::new();
    let mut temp_guard: Option<(u32, Option<usize>)> = None;
    let mut let_binding: Option<String> = None;
    let mut depth = 0i32;

    let held_now = |guards: &[Guard], temp: &Option<(u32, Option<usize>)>| -> Vec<HeldAt> {
        let mut held: Vec<HeldAt> = guards
            .iter()
            .filter_map(|g| {
                g.class.map(|class| HeldAt {
                    class,
                    line: g.line,
                })
            })
            .collect();
        if let Some((line, Some(class))) = temp {
            held.push(HeldAt {
                class: *class,
                line: *line,
            });
        }
        held
    };

    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        match &t.kind {
            Kind::Punct('{') => {
                depth += 1;
                temp_guard = None;
                let_binding = None;
            }
            Kind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                known.retain(|(_, d)| *d <= depth);
                temp_guard = None;
                let_binding = None;
            }
            Kind::Punct(';') => {
                temp_guard = None;
                let_binding = None;
            }
            Kind::Ident(id) if id == "let" => {
                let mut j = i + 1;
                while code
                    .get(j)
                    .is_some_and(|t| t.is_ident("mut") || t.is_ident("ref"))
                {
                    j += 1;
                }
                if let Some(Kind::Ident(name)) = code.get(j).map(|t| &t.kind) {
                    let_binding = Some(name.clone());
                }
            }
            Kind::Ident(id) if id == "drop" && code.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                if let Some(Kind::Ident(name)) = code.get(i + 2).map(|t| &t.kind) {
                    if code.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                        guards.retain(|g| &g.name != name);
                    }
                }
            }
            // Zero-argument `.lock()` / `.read()` / `.write()` — an
            // acquisition when the receiver field is declared.
            Kind::Ident(id)
                if (id == "lock" || id == "read" || id == "write")
                    && i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && code.get(i + 2).is_some_and(|t| t.is_punct(')')) =>
            {
                let class = receiver_field(code, i - 1)
                    .and_then(|f| fields.get(f))
                    .copied();
                let closes = code.get(i + 3).is_some_and(|t| t.is_punct(';'));
                let reacquire = if closes && let_binding.is_none() {
                    let mut j = i;
                    while j > 0 && !matches!(code[j - 1].kind, Kind::Punct(';' | '{' | '}')) {
                        j -= 1;
                    }
                    match (
                        code.get(j).map(|t| &t.kind),
                        code.get(j + 1),
                        code.get(j + 2),
                    ) {
                        (Some(Kind::Ident(name)), Some(eq), Some(after))
                            if eq.is_punct('=') && !after.is_punct('=') =>
                        {
                            known.iter().rev().find(|(n, _)| n == name).cloned()
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some((name, _)) = &reacquire {
                    guards.retain(|g| &g.name != name);
                }
                if let Some(class) = class {
                    events.push(Event {
                        kind: EvKind::Acquire(class),
                        line: t.line,
                        held: held_now(&guards, &temp_guard),
                    });
                }
                if let Some((name, bind_depth)) = reacquire {
                    guards.push(Guard {
                        name,
                        depth: bind_depth,
                        line: t.line,
                        class,
                    });
                } else if closes && let_binding.is_some() {
                    let name = let_binding.clone().unwrap_or_default();
                    known.push((name.clone(), depth));
                    guards.push(Guard {
                        name,
                        depth,
                        line: t.line,
                        class,
                    });
                } else {
                    temp_guard = Some((t.line, class));
                }
            }
            // Volume I/O (any receiver).
            Kind::Ident(id)
                if IO_METHODS.contains(&id.as_str())
                    && i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                events.push(Event {
                    kind: EvKind::Io(id.clone()),
                    line: t.line,
                    held: held_now(&guards, &temp_guard),
                });
            }
            // A call that may resolve within the crate: `name(…)` bare,
            // `self.name(…)`, or `Self::name(…)`. Method calls on other
            // receivers and `path::name(…)` are deliberately unresolved.
            Kind::Ident(id)
                if code.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !KEYWORDS.contains(&id.as_str())
                    && id != "drop"
                    && call_resolvable(code, i) =>
            {
                events.push(Event {
                    kind: EvKind::Call(id.clone()),
                    line: t.line,
                    held: held_now(&guards, &temp_guard),
                });
            }
            _ => {}
        }
        i += 1;
    }
    events
}

// ---------------------------------------------------------------------
// The analysis proper
// ---------------------------------------------------------------------

/// Run the full L5 analysis over `crates`, cross-checking the class
/// table against `design` (the DESIGN.md text) when given.
pub fn analyze(crates: &[CrateInput], design: Option<&str>) -> Analysis {
    struct CrateBodies {
        ci: usize,
        bodies: Vec<FnBody>,
        allowed_per_file: Vec<std::collections::HashSet<u32>>,
        paths: Vec<String>,
    }
    let mut analysis = Analysis::default();
    // Global class table: name → (rank, io_allowed, decl, krate).
    let mut class_ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut classes: Vec<ClassRow> = Vec::new();
    let mut per_crate: Vec<CrateBodies> = Vec::new();

    for (ci, krate) in crates.iter().enumerate() {
        let mut bodies: Vec<FnBody> = Vec::new();
        let mut allowed_per_file = Vec::new();
        let mut paths = Vec::new();
        for (fi, file) in krate.files.iter().enumerate() {
            let toks = lex(&file.src);
            let allowed = allowed_lines(&toks, AllowRule::LockOrder);
            let (decls, problems) = parse_decls(&toks);
            for (line, msg) in problems {
                analysis.sites.push(LockSite {
                    location: format!("{}:{line}", file.path),
                    detail: msg,
                    annotated: allowed.contains(&line),
                    krate: krate.name.clone(),
                });
            }
            // Register classes and build the per-file field map.
            let mut fields: HashMap<String, usize> = HashMap::new();
            for d in &decls {
                let id = match class_ids.get(&d.class) {
                    Some(&id) => {
                        let row = &classes[id];
                        if row.rank != d.rank || row.io_allowed != d.io_allowed {
                            analysis.sites.push(LockSite {
                                location: format!("{}:{}", file.path, d.line),
                                detail: format!(
                                    "lock class `{}` redeclared as rank {} io {} but {} \
                                     declares rank {} io {} — one class, one contract",
                                    d.class,
                                    d.rank,
                                    io_word(d.io_allowed),
                                    row.decl,
                                    row.rank,
                                    io_word(row.io_allowed),
                                ),
                                annotated: allowed.contains(&d.line),
                                krate: krate.name.clone(),
                            });
                        }
                        id
                    }
                    None => {
                        let id = classes.len();
                        class_ids.insert(d.class.clone(), id);
                        classes.push(ClassRow {
                            name: d.class.clone(),
                            rank: d.rank,
                            io_allowed: d.io_allowed,
                            decl: format!("{}:{}", file.path, d.line),
                            krate: krate.name.clone(),
                        });
                        id
                    }
                };
                fields.insert(d.field.clone(), id);
            }
            let toks = strip_test_code(toks);
            let code: Vec<&Tok> = toks
                .iter()
                .filter(|t| !matches!(t.kind, Kind::Comment(_)))
                .collect();
            extract_functions(&code, fi, &fields, &mut bodies);
            allowed_per_file.push(allowed);
            paths.push(file.path.clone());
        }
        per_crate.push(CrateBodies {
            ci,
            bodies,
            allowed_per_file,
            paths,
        });
    }

    // Doc cross-check (both directions), before the propagation so the
    // table the findings refer to is already validated.
    if let Some(md) = design {
        let (anchors, problems) = parse_doc_anchors(md);
        for (line, msg) in problems {
            analysis.sites.push(LockSite {
                location: format!("DESIGN.md:{line}"),
                detail: msg,
                annotated: false,
                krate: String::new(),
            });
        }
        let mut doc: BTreeMap<&str, &DocAnchor> = BTreeMap::new();
        for a in &anchors {
            doc.insert(a.class.as_str(), a);
        }
        for row in &classes {
            match doc.remove(row.name.as_str()) {
                None => analysis.sites.push(LockSite {
                    location: row.decl.clone(),
                    detail: format!(
                        "lock class `{}` has no `<!-- lock-class: … -->` anchor in \
                         DESIGN.md §13 — document it in the hierarchy table",
                        row.name
                    ),
                    annotated: false,
                    krate: row.krate.clone(),
                }),
                Some(a) if a.rank != row.rank || a.io_allowed != row.io_allowed => {
                    analysis.sites.push(LockSite {
                        location: format!("DESIGN.md:{}", a.line),
                        detail: format!(
                            "lock class `{}` drifted: DESIGN.md says rank {} io {}, \
                             {} declares rank {} io {}",
                            row.name,
                            a.rank,
                            io_word(a.io_allowed),
                            row.decl,
                            row.rank,
                            io_word(row.io_allowed),
                        ),
                        annotated: false,
                        krate: row.krate.clone(),
                    });
                }
                Some(_) => {}
            }
        }
        for (name, a) in doc {
            analysis.sites.push(LockSite {
                location: format!("DESIGN.md:{}", a.line),
                detail: format!(
                    "DESIGN.md documents lock class `{name}` but no source file declares it \
                     — remove the row or restore the declaration"
                ),
                annotated: false,
                krate: String::new(),
            });
        }
    }

    // Per-crate fixed point + finding emission.
    let mut edges: BTreeMap<(usize, usize), String> = BTreeMap::new();
    let mut edge_violation: BTreeMap<(usize, usize), bool> = BTreeMap::new();
    for CrateBodies {
        ci,
        bodies,
        allowed_per_file,
        paths,
    } in &per_crate
    {
        let krate = &crates[*ci];
        // Unique-name resolution.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (bi, b) in bodies.iter().enumerate() {
            by_name.entry(b.name.as_str()).or_default().push(bi);
        }
        let resolve: HashMap<&str, usize> = by_name
            .iter()
            .filter(|(_, v)| v.len() == 1)
            .map(|(&n, v)| (n, v[0]))
            .collect();

        // Fixed point: transitively-acquired classes and I/O reach.
        let mut trans_acq: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); bodies.len()];
        let mut trans_io: Vec<bool> = vec![false; bodies.len()];
        for (bi, b) in bodies.iter().enumerate() {
            for ev in &b.events {
                match &ev.kind {
                    EvKind::Acquire(c) => {
                        trans_acq[bi].insert(*c);
                    }
                    EvKind::Io(_) => trans_io[bi] = true,
                    EvKind::Call(_) => {}
                }
            }
        }
        loop {
            let mut changed = false;
            for (bi, b) in bodies.iter().enumerate() {
                for ev in &b.events {
                    let EvKind::Call(name) = &ev.kind else {
                        continue;
                    };
                    let Some(&callee) = resolve.get(name.as_str()) else {
                        continue;
                    };
                    if callee == bi {
                        continue;
                    }
                    if trans_io[callee] && !trans_io[bi] {
                        trans_io[bi] = true;
                        changed = true;
                    }
                    let add: Vec<usize> = trans_acq[callee]
                        .difference(&trans_acq[bi])
                        .copied()
                        .collect();
                    if !add.is_empty() {
                        trans_acq[bi].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Emit findings per event.
        for b in bodies {
            let path = &paths[b.file];
            let allowed = &allowed_per_file[b.file];
            let push = |line: u32, detail: String, analysis: &mut Analysis| {
                analysis.sites.push(LockSite {
                    location: format!("{path}:{line}"),
                    detail,
                    annotated: allowed.contains(&line),
                    krate: krate.name.clone(),
                });
            };
            for ev in &b.events {
                match &ev.kind {
                    EvKind::Acquire(c) => {
                        for h in &ev.held {
                            record_edge(
                                &mut edges,
                                &mut edge_violation,
                                h.class,
                                *c,
                                format!("{path}:{}", ev.line),
                                &classes,
                            );
                            if let Some(detail) = rank_violation(&classes, h, *c, None, &b.name) {
                                push(ev.line, detail, &mut analysis);
                            }
                        }
                    }
                    EvKind::Io(method) => {
                        for h in &ev.held {
                            if !classes[h.class].io_allowed {
                                push(
                                    ev.line,
                                    format!(
                                        "volume I/O `{method}` while `{}` (io = forbidden, \
                                         taken line {}) is held in `{}` — drop the guard \
                                         first (§4.5), or move the class to io = allowed \
                                         with a DESIGN.md §13 justification",
                                        classes[h.class].name, h.line, b.name
                                    ),
                                    &mut analysis,
                                );
                            }
                        }
                    }
                    EvKind::Call(name) => {
                        let Some(&callee) = resolve.get(name.as_str()) else {
                            continue;
                        };
                        if ev.held.is_empty() {
                            continue;
                        }
                        for h in &ev.held {
                            for &c in &trans_acq[callee] {
                                record_edge(
                                    &mut edges,
                                    &mut edge_violation,
                                    h.class,
                                    c,
                                    format!("{path}:{} via `{name}`", ev.line),
                                    &classes,
                                );
                                if let Some(detail) =
                                    rank_violation(&classes, h, c, Some(name), &b.name)
                                {
                                    push(ev.line, detail, &mut analysis);
                                }
                            }
                            if trans_io[callee] && !classes[h.class].io_allowed {
                                push(
                                    ev.line,
                                    format!(
                                        "volume I/O reachable via `{name}` while `{}` \
                                         (io = forbidden, taken line {}) is held in `{}` \
                                         — drop the guard before the call (§4.5)",
                                        classes[h.class].name, h.line, b.name
                                    ),
                                    &mut analysis,
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle safety net: with strictly-increasing ranks every cycle
    // already contains a rank-violation edge, so if any edge of the
    // cycle carries a rank finding the deadlock is already reported
    // and this stays quiet. It only fires when the rank check was
    // somehow evaded on every edge.
    if let Some(cycle) = find_cycle(classes.len(), &edges) {
        let explained = cycle
            .windows(2)
            .any(|w| edge_violation.get(&(w[0], w[1])).copied().unwrap_or(false));
        if !explained {
            let names: Vec<&str> = cycle.iter().map(|&c| classes[c].name.as_str()).collect();
            let witness = edges
                .get(&(cycle[0], cycle[1]))
                .cloned()
                .unwrap_or_default();
            analysis.sites.push(LockSite {
                location: witness,
                detail: format!(
                    "acquisition-order cycle: {} — a deadlock is reachable; break one edge",
                    names.join(" -> ")
                ),
                annotated: false,
                krate: String::new(),
            });
        }
    }

    analysis.edges = edges
        .into_iter()
        .map(|((f, t), location)| EdgeRow {
            from: classes[f].name.clone(),
            to: classes[t].name.clone(),
            location,
        })
        .collect();
    analysis
        .edges
        .sort_by_key(|e| (class_rank(&classes, &e.from), class_rank(&classes, &e.to)));
    classes.sort_by(|a, b| (a.rank, &a.name).cmp(&(b.rank, &b.name)));
    analysis.classes = classes;
    analysis
}

fn io_word(allowed: bool) -> &'static str {
    if allowed {
        "allowed"
    } else {
        "forbidden"
    }
}

fn class_rank(classes: &[ClassRow], name: &str) -> u32 {
    classes
        .iter()
        .find(|c| c.name == name)
        .map_or(u32::MAX, |c| c.rank)
}

/// Rank check for acquiring `acq` while `held` is held: ranks must
/// strictly increase, so `held.rank >= acq.rank` is an inversion (and
/// `==` on the same class is a self-deadlock).
fn rank_violation(
    classes: &[ClassRow],
    held: &HeldAt,
    acq: usize,
    via: Option<&str>,
    in_fn: &str,
) -> Option<String> {
    let h = &classes[held.class];
    let a = &classes[acq];
    if h.rank < a.rank {
        return None;
    }
    let via = via.map_or(String::new(), |f| format!(" via `{f}`"));
    Some(if held.class == acq {
        format!(
            "`{}` (rank {}) acquired{via} while already held (taken line {}) in `{in_fn}` \
             — self-deadlock",
            a.name, a.rank, held.line
        )
    } else {
        format!(
            "`{}` (rank {}) acquired{via} while `{}` (rank {}, taken line {}) is held \
             in `{in_fn}` — ranks must strictly increase along the acquisition order \
             (DESIGN.md §13)",
            a.name, a.rank, h.name, h.rank, held.line
        )
    })
}

fn record_edge(
    edges: &mut BTreeMap<(usize, usize), String>,
    violations: &mut BTreeMap<(usize, usize), bool>,
    from: usize,
    to: usize,
    location: String,
    classes: &[ClassRow],
) {
    edges.entry((from, to)).or_insert(location);
    let bad = classes[from].rank >= classes[to].rank;
    let e = violations.entry((from, to)).or_insert(false);
    *e = *e || bad;
}

/// First cycle in the edge graph as a class-index path `a -> … -> a`,
/// if any.
fn find_cycle(n: usize, edges: &BTreeMap<(usize, usize), String>) -> Option<Vec<usize>> {
    fn dfs(
        v: usize,
        adj: &[Vec<usize>],
        state: &mut [u8],
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state[v] = 1;
        stack.push(v);
        for &w in &adj[v] {
            if state[w] == 1 {
                let start = stack.iter().position(|&x| x == w).unwrap_or(0);
                let mut cycle: Vec<usize> = stack[start..].to_vec();
                cycle.push(w);
                return Some(cycle);
            }
            if state[w] == 0 {
                if let Some(c) = dfs(w, adj, state, stack) {
                    return Some(c);
                }
            }
        }
        stack.pop();
        state[v] = 2;
        None
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(f, t) in edges.keys() {
        adj[f].push(t);
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; n];
    let mut stack: Vec<usize> = Vec::new();
    for v in 0..n {
        if state[v] == 0 {
            if let Some(c) = dfs(v, &adj, &mut state, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_crate(files: Vec<(&str, &str)>) -> Vec<CrateInput> {
        vec![CrateInput {
            name: "fixture".to_string(),
            files: files
                .into_iter()
                .map(|(path, src)| SourceFile {
                    path: path.to_string(),
                    src: src.to_string(),
                })
                .collect(),
        }]
    }

    #[test]
    fn decl_comment_parses_and_registers() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: inner = fx.a rank = 10 io = forbidden\n\
             pub struct S { inner: Mutex<u32> }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.classes.len(), 1);
        assert_eq!(a.classes[0].name, "fx.a");
        assert_eq!(a.classes[0].rank, 10);
        assert!(!a.classes[0].io_allowed);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn malformed_decl_is_a_finding() {
        let crates = one_crate(vec![("a.rs", "// lock-class: inner = fx.a rank = ten\n")]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1);
        assert!(
            a.sites[0].detail.contains("unsigned integer")
                || a.sites[0].detail.contains("malformed")
        );
    }

    #[test]
    fn in_order_acquisition_is_clean_and_edges_recorded() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: low = fx.low rank = 1 io = forbidden\n\
             // lock-class: high = fx.high rank = 2 io = forbidden\n\
             impl S {\n\
                 fn ok(&self) { let a = self.low.lock(); let b = self.high.lock(); drop(b); drop(a); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
        assert_eq!(a.edges.len(), 1);
        assert_eq!(
            (a.edges[0].from.as_str(), a.edges[0].to.as_str()),
            ("fx.low", "fx.high")
        );
    }

    #[test]
    fn rank_inversion_fires() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: low = fx.low rank = 1 io = forbidden\n\
             // lock-class: high = fx.high rank = 2 io = forbidden\n\
             impl S {\n\
                 fn bad(&self) { let b = self.high.lock(); let a = self.low.lock(); drop(a); drop(b); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("strictly increase"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn interprocedural_acquisition_makes_an_edge() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: low = fx.low rank = 1 io = forbidden\n\
             // lock-class: high = fx.high rank = 2 io = forbidden\n\
             impl S {\n\
                 fn outer(&self) { let b = self.high.lock(); self.taker(); drop(b); }\n\
                 fn taker(&self) { let a = self.low.lock(); drop(a); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("via `taker`"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn self_qualified_associated_call_resolves() {
        // `Self::taker(self)` must propagate like `self.taker()`; a
        // different path qualifier (`other::taker`) must stay opaque.
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: low = fx.low rank = 1 io = forbidden\n\
             // lock-class: high = fx.high rank = 2 io = forbidden\n\
             impl S {\n\
                 fn outer(&self) { let b = self.high.lock(); Self::taker(self); drop(b); }\n\
                 fn taker(&self) { let a = self.low.lock(); drop(a); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("via `taker`"),
            "{}",
            a.sites[0].detail
        );

        let opaque = one_crate(vec![(
            "a.rs",
            "// lock-class: low = fx.low rank = 1 io = forbidden\n\
             // lock-class: high = fx.high rank = 2 io = forbidden\n\
             impl S {\n\
                 fn outer(&self) { let b = self.high.lock(); other::taker(self); drop(b); }\n\
                 fn taker(&self) { let a = self.low.lock(); drop(a); }\n\
             }\n",
        )]);
        let a = analyze(&opaque, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn io_under_forbidden_class_fires_through_two_calls() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: latch = fx.latch rank = 1 io = forbidden\n\
             impl S {\n\
                 fn top(&self) { let g = self.latch.lock(); self.mid(); drop(g); }\n\
                 fn mid(&self) { self.bottom(); }\n\
                 fn bottom(&self) { self.vol.write_pages(0, &[]); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("via `mid`"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn io_allowed_class_tolerates_io() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: latch = fx.latch rank = 1 io = allowed\n\
             impl S {\n\
                 fn top(&self) { let g = self.latch.lock(); self.vol.write_pages(0, &[]); drop(g); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn annotation_suppresses_but_site_remains() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: latch = fx.latch rank = 1 io = forbidden\n\
             impl S {\n\
                 fn top(&self) {\n\
                     let g = self.latch.lock();\n\
                     // lint: allow(lockorder, reason = \"fixture: startup path\")\n\
                     self.vol.sync();\n\
                     drop(g);\n\
                 }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1);
        assert!(a.sites[0].annotated);
    }

    #[test]
    fn unresolved_receiver_calls_are_ignored() {
        // `map.remove(…)` must not resolve to a crate fn named `remove`.
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: latch = fx.latch rank = 1 io = forbidden\n\
             impl S {\n\
                 fn top(&self) { let g = self.latch.lock(); g.map.remove(1); drop(g); }\n\
                 fn remove(&self) { self.vol.sync(); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn release_then_reacquire_is_not_held_across_call() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: group = fx.group rank = 1 io = forbidden\n\
             impl S {\n\
                 fn leader(&self) {\n\
                     let mut g = self.group.lock();\n\
                     loop { drop(g); self.flush(); g = self.group.lock(); }\n\
                 }\n\
                 fn flush(&self) { self.vol.sync(); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn doc_anchor_drift_fires_both_directions() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: inner = fx.a rank = 10 io = forbidden\n",
        )]);
        // Wrong rank on the documented class + a phantom class.
        let md = "<!-- lock-class: fx.a rank = 11 io = forbidden -->\n\
                  <!-- lock-class: fx.ghost rank = 5 io = allowed -->\n";
        let a = analyze(&crates, Some(md));
        assert_eq!(a.sites.len(), 2, "{:?}", a.sites);
        assert!(a.sites.iter().any(|s| s.detail.contains("drifted")));
        assert!(a
            .sites
            .iter()
            .any(|s| s.detail.contains("no source file declares")));
        // Matching doc is clean.
        let md = "<!-- lock-class: fx.a rank = 10 io = forbidden -->\n";
        assert!(analyze(&crates, Some(md)).sites.is_empty());
    }

    #[test]
    fn conflicting_redeclaration_fires() {
        let crates = one_crate(vec![
            ("a.rs", "// lock-class: x = fx.a rank = 10 io = forbidden\n"),
            ("b.rs", "// lock-class: y = fx.a rank = 11 io = forbidden\n"),
        ]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1);
        assert!(a.sites[0].detail.contains("redeclared"));
    }

    #[test]
    fn per_file_field_maps_do_not_collide() {
        // Both files call their lock `state`; each resolves to its own
        // class, so the cross-file rank check still works per class.
        let crates = one_crate(vec![
            (
                "a.rs",
                "// lock-class: state = fx.a rank = 1 io = forbidden\n\
                 impl A { fn f(&self) { let g = self.state.lock(); drop(g); } }\n",
            ),
            (
                "b.rs",
                "// lock-class: state = fx.b rank = 2 io = allowed\n\
                 impl B { fn f(&self) { let g = self.state.lock(); self.vol.sync(); drop(g); } }\n",
            ),
        ]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
        assert_eq!(a.classes.len(), 2);
    }

    #[test]
    fn indexed_receiver_resolves_through_brackets() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: slots = fx.slots rank = 1 io = forbidden\n\
             impl S { fn f(&self) { self.slots[i].lock().replace(v); self.vol.sync(); } }\n",
        )]);
        // Temporary guard dies at the first `;` — the sync is clean.
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
        // But I/O in the same statement fires.
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: slots = fx.slots rank = 1 io = forbidden\n\
             impl S { fn f(&self) { self.slots[i].lock().replace(self.vol.read_pages(0, 1)); } }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
    }

    #[test]
    fn rwlock_read_and_write_are_acquisitions() {
        let crates = one_crate(vec![(
            "a.rs",
            "// lock-class: store = fx.store rank = 2 io = forbidden\n\
             // lock-class: group = fx.group rank = 1 io = forbidden\n\
             impl S {\n\
                 fn bad(&self) { let s = self.store.write(); let g = self.group.lock(); drop(g); drop(s); }\n\
             }\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(a.sites[0].detail.contains("fx.group"));
    }
}
