//! Rule L4 — FORMAT.md ↔ code drift.
//!
//! FORMAT.md is the on-disk contract; the constants in the codecs are
//! its implementation. PR 2 proved the two can silently diverge (the
//! WAL format bumped to v2 mid-review with the doc trailing). This
//! rule makes the pairing machine-checked:
//!
//! * FORMAT.md declares values with HTML-comment anchors next to the
//!   prose they document:
//!
//!   ```text
//!   <!-- anchor: NODE_MAGIC = 0x454F_534E -->
//!   ```
//!
//! * the source marks the matching constant with a trailing comment on
//!   the same line as its `= <literal>`:
//!
//!   ```text
//!   pub const NODE_MAGIC: u32 = 0x454F_534E; // format-anchor: NODE_MAGIC
//!   ```
//!
//! Every doc anchor must bind to exactly one source anchor with an
//! equal value, and vice versa. A mismatched value, a doc anchor with
//! no source twin, a source anchor with no doc twin, or a duplicate
//! key on either side is an error.

use std::collections::BTreeMap;

use crate::lexer::{lex, parse_int, Kind};

/// A drift problem. `location` is `FORMAT.md:line` or `file.rs:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftSite {
    pub location: String,
    pub detail: String,
}

/// One side of an anchor pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anchor {
    pub key: String,
    pub value: u128,
    /// 1-based line in the declaring file.
    pub line: u32,
}

/// Parse `<!-- anchor: KEY = VALUE -->` declarations out of FORMAT.md.
/// Malformed anchor comments are reported as sites so typos cannot
/// silently disable a check.
pub fn parse_doc_anchors(markdown: &str) -> (Vec<Anchor>, Vec<DriftSite>) {
    let mut anchors = Vec::new();
    let mut problems = Vec::new();
    for (no, line) in markdown.lines().enumerate() {
        let line_no = (no + 1) as u32;
        let Some(start) = line.find("<!-- anchor:") else {
            // Catch near-misses like `<!--anchor:` or `<!-- anchor ` so
            // a typo is an error rather than a skipped check.
            if line.contains("anchor") && line.contains("<!--") {
                problems.push(DriftSite {
                    location: format!("FORMAT.md:{line_no}"),
                    detail: "malformed anchor comment (expected `<!-- anchor: KEY = VALUE -->`)"
                        .to_string(),
                });
            }
            continue;
        };
        let rest = &line[start + "<!-- anchor:".len()..];
        let Some(end) = rest.find("-->") else {
            problems.push(DriftSite {
                location: format!("FORMAT.md:{line_no}"),
                detail: "unterminated anchor comment".to_string(),
            });
            continue;
        };
        let body = rest[..end].trim();
        let mut halves = body.splitn(2, '=');
        let key = halves.next().unwrap_or("").trim();
        let value = halves.next().map(str::trim);
        let parsed = value.and_then(parse_int);
        match (key.is_empty(), parsed) {
            (false, Some(v)) => anchors.push(Anchor {
                key: key.to_string(),
                value: v,
                line: line_no,
            }),
            _ => problems.push(DriftSite {
                location: format!("FORMAT.md:{line_no}"),
                detail: format!("anchor `{body}` is not `KEY = <integer>`"),
            }),
        }
    }
    (anchors, problems)
}

/// Extract `// format-anchor: KEY` declarations from one source file.
/// The anchored value is the first integer literal following an `=` on
/// the same line (i.e. the constant's initializer).
pub fn parse_source_anchors(src: &str) -> (Vec<Anchor>, Vec<DriftSite>) {
    let toks = lex(src);
    let mut anchors = Vec::new();
    let mut problems = Vec::new();
    for t in &toks {
        let Kind::Comment(text) = &t.kind else {
            continue;
        };
        let body = text.trim_start_matches('/').trim();
        let Some(key) = body.strip_prefix("format-anchor:").map(str::trim) else {
            continue;
        };
        if key.is_empty() || key.contains(char::is_whitespace) {
            problems.push(DriftSite {
                location: format!("{}", t.line),
                detail: "format-anchor comment needs exactly one KEY".to_string(),
            });
            continue;
        }
        // Find `= <int>` on the same line, before the comment.
        let mut value = None;
        let mut after_eq = false;
        for s in &toks {
            if s.line != t.line {
                continue;
            }
            match &s.kind {
                Kind::Punct('=') => after_eq = true,
                Kind::Int { value: v, .. } if after_eq => {
                    value = *v;
                    break;
                }
                _ => {}
            }
        }
        match value {
            Some(v) => anchors.push(Anchor {
                key: key.to_string(),
                value: v,
                line: t.line,
            }),
            None => problems.push(DriftSite {
                location: format!("{}", t.line),
                detail: format!("format-anchor `{key}` has no `= <integer literal>` on its line"),
            }),
        }
    }
    (anchors, problems)
}

/// Cross-check the doc side against the source side. `sources` pairs a
/// display path with that file's anchors. Returns `(problems,
/// matched_count)`.
pub fn cross_check(doc: &[Anchor], sources: &[(String, Vec<Anchor>)]) -> (Vec<DriftSite>, usize) {
    let mut problems = Vec::new();
    let mut matched = 0usize;

    // Index the source side; duplicate keys across files are an error.
    let mut by_key: BTreeMap<&str, (&str, &Anchor)> = BTreeMap::new();
    for (path, anchors) in sources {
        for a in anchors {
            if let Some((first_path, first)) = by_key.insert(a.key.as_str(), (path, a)) {
                problems.push(DriftSite {
                    location: format!("{path}:{}", a.line),
                    detail: format!(
                        "duplicate format-anchor `{}` (first at {first_path}:{})",
                        a.key, first.line
                    ),
                });
            }
        }
    }

    let mut doc_seen: BTreeMap<&str, &Anchor> = BTreeMap::new();
    for d in doc {
        if let Some(first) = doc_seen.insert(d.key.as_str(), d) {
            problems.push(DriftSite {
                location: format!("FORMAT.md:{}", d.line),
                detail: format!(
                    "duplicate doc anchor `{}` (first at FORMAT.md:{})",
                    d.key, first.line
                ),
            });
            continue;
        }
        match by_key.get(d.key.as_str()) {
            None => problems.push(DriftSite {
                location: format!("FORMAT.md:{}", d.line),
                detail: format!(
                    "doc anchor `{}` has no `// format-anchor: {}` in the sources",
                    d.key, d.key
                ),
            }),
            Some((path, s)) if s.value != d.value => problems.push(DriftSite {
                location: format!("{path}:{}", s.line),
                detail: format!(
                    "`{}` drifted: code has {:#x} but FORMAT.md:{} documents {:#x}",
                    d.key, s.value, d.line, d.value
                ),
            }),
            Some(_) => matched += 1,
        }
    }

    for (path, anchors) in sources {
        for a in anchors {
            if !doc_seen.contains_key(a.key.as_str()) {
                problems.push(DriftSite {
                    location: format!("{path}:{}", a.line),
                    detail: format!("source anchor `{}` is not documented in FORMAT.md", a.key),
                });
            }
        }
    }

    (problems, matched)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_anchor_parsing() {
        let md = "\
# Layout
<!-- anchor: NODE_MAGIC = 0x454F_534E -->
| magic | 4 bytes |
<!-- anchor: NODE_HEADER = 8 -->
<!-- anchor: broken -->
";
        let (anchors, problems) = parse_doc_anchors(md);
        assert_eq!(anchors.len(), 2);
        assert_eq!(anchors[0].key, "NODE_MAGIC");
        assert_eq!(anchors[0].value, 0x454F_534E);
        assert_eq!(anchors[1].value, 8);
        assert_eq!(problems.len(), 1, "malformed anchor must be reported");
    }

    #[test]
    fn source_anchor_parsing() {
        let src = "\
pub const NODE_MAGIC: u32 = 0x454F_534E; // format-anchor: NODE_MAGIC
pub const NODE_HEADER: usize = 8; // format-anchor: NODE_HEADER
pub const NO_VALUE: &str = \"x\"; // format-anchor: NO_VALUE
";
        let (anchors, problems) = parse_source_anchors(src);
        assert_eq!(anchors.len(), 2);
        assert_eq!(anchors[0].value, 0x454F_534E);
        assert_eq!(
            problems.len(),
            1,
            "anchor without an int literal is reported"
        );
    }

    #[test]
    fn cross_check_matches_and_drifts() {
        let (doc, _) = parse_doc_anchors(
            "<!-- anchor: A = 1 -->\n<!-- anchor: B = 2 -->\n<!-- anchor: GONE = 9 -->\n",
        );
        let (src, _) = parse_source_anchors(
            "const A: u8 = 1; // format-anchor: A\nconst B: u8 = 3; // format-anchor: B\nconst EXTRA: u8 = 7; // format-anchor: EXTRA\n",
        );
        let (problems, matched) = cross_check(&doc, &[("x.rs".to_string(), src)]);
        assert_eq!(matched, 1, "only A matches");
        assert_eq!(problems.len(), 3);
        let text: String = problems
            .iter()
            .map(|p| p.detail.clone())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("`B` drifted"));
        assert!(text.contains("`GONE` has no"));
        assert!(text.contains("`EXTRA` is not documented"));
    }

    #[test]
    fn clean_cross_check() {
        let (doc, p1) = parse_doc_anchors("<!-- anchor: K = 0x10 -->\n");
        let (src, p2) = parse_source_anchors("const K: u8 = 0x10; // format-anchor: K\n");
        assert!(p1.is_empty() && p2.is_empty());
        let (problems, matched) = cross_check(&doc, &[("y.rs".to_string(), src)]);
        assert!(problems.is_empty());
        assert_eq!(matched, 1);
    }
}
