//! Rendering a lint run — deliberately the same finding shape as
//! `eos-check::report` (severity / layer / location / detail, a table
//! and a `--json` object with a `clean` flag), so downstream tooling
//! parses one format whether the findings came from the on-disk checker
//! or the source linter.

use std::fmt;

/// How bad a finding is. Identical semantics to `eos_check::Severity`:
/// a run is clean when nothing worse than [`Severity::Info`] is
/// present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Noteworthy but not failing (e.g. a ratchet that can tighten).
    Info,
    /// Suspicious but tolerated (not currently produced).
    Warning,
    /// A source invariant is broken; the gate fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which lint rule produced a finding (the "layer" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// L1: `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/range
    /// indexing in non-test production code.
    PanicPath,
    /// L2: per-crate unannotated panic-path count vs. the checked-in
    /// ratchet file.
    Ratchet,
    /// L3: a latch guard held across volume I/O or a second latch
    /// (§4.5 short-duration-latch discipline).
    Latch,
    /// L4: FORMAT.md anchor constants vs. the constants in code.
    FormatDrift,
    /// L5: interprocedural lock-order analysis (eos-lockdep) — rank
    /// inversions, I/O under an `io = forbidden` class, DESIGN.md §13
    /// hierarchy drift.
    LockOrder,
    /// L6: interprocedural durability-ordering analysis (eos-crashdep)
    /// — writes reachable before the sync that makes them safe,
    /// superblock publishes into the live slot, DESIGN.md §15 contract
    /// drift.
    Durability,
}

impl Rule {
    /// Stable rule id (used in reports and in DESIGN.md §10).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::PanicPath => "panic-path",
            Rule::Ratchet => "ratchet",
            Rule::Latch => "latch",
            Rule::FormatDrift => "format-drift",
            Rule::LockOrder => "lockorder",
            Rule::Durability => "durability",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// The rule that fired.
    pub rule: Rule,
    /// Where: `path/to/file.rs:line` (or a crate name for ratchet
    /// summaries).
    pub location: String,
    /// What is wrong and how to fix it.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.rule, self.location, self.detail
        )
    }
}

/// One declared lock class, as rendered into `--json` / `--locks-dot`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockClassRow {
    /// Global class name (`commit.group`).
    pub name: String,
    /// Acquisition rank (strictly increasing along any chain).
    pub rank: u32,
    /// May volume I/O happen under this class?
    pub io_allowed: bool,
}

/// One observed acquisition-order edge (held → acquired).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdgeRow {
    /// Class held.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// First witness site (`path:line`, possibly `via …`).
    pub location: String,
}

/// One declared durability class, as rendered into `--json` /
/// `--durability-dot`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityClassRow {
    /// Global class name (`commit-frame`).
    pub name: String,
    /// The class whose seal must precede any mutation of this one
    /// (`None` for root classes like `undo-image`).
    pub requires: Option<String>,
}

/// One annotated durability contract site (a volume write or sync in
/// the commit path), as rendered into `--json` / `--durability-dot`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityContractRow {
    /// Where the annotated site lives (`path:line`).
    pub location: String,
    /// Classes this site's sync seals (empty for pure writes).
    pub seals: Vec<String>,
    /// Classes this site's write mutates (empty for pure syncs).
    pub mutates: Vec<String>,
}

/// Everything one `eos lint` run found, plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, in rule order (panic-path → ratchet → latch →
    /// format-drift → lockorder).
    pub findings: Vec<Finding>,
    /// Source files lexed.
    pub files_scanned: usize,
    /// FORMAT.md anchors successfully cross-checked against code.
    pub anchors_checked: usize,
    /// Panic-path sites suppressed by an inline
    /// `// lint: allow(panic, reason = "…")` annotation.
    pub sites_annotated: usize,
    /// Unannotated panic-path sites (the quantity the ratchet bounds).
    pub sites_unannotated: usize,
    /// The L5 lock-class table (sorted by rank).
    pub lock_classes: Vec<LockClassRow>,
    /// The L5 acquisition-order edges (first witness each).
    pub lock_edges: Vec<LockEdgeRow>,
    /// The L6 durability-class table (sorted by name).
    pub durability_classes: Vec<DurabilityClassRow>,
    /// The L6 annotated write/sync contract sites (sorted by location).
    pub durability_contracts: Vec<DurabilityContractRow>,
}

impl Report {
    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Clean = nothing worse than [`Severity::Info`] (same rule as
    /// `eos-check`).
    pub fn is_clean(&self) -> bool {
        self.max_severity().is_none_or(|s| s <= Severity::Info)
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Human-readable table: one row per finding plus a summary line —
    /// the same columns `eos check` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.findings.is_empty() {
            let sev_w = self
                .findings
                .iter()
                .map(|f| f.severity.to_string().len())
                .max()
                .unwrap_or(0)
                .max("SEVERITY".len());
            let rule_w = self
                .findings
                .iter()
                .map(|f| f.rule.id().len())
                .max()
                .unwrap_or(0)
                .max("LAYER".len());
            let loc_w = self
                .findings
                .iter()
                .map(|f| f.location.len())
                .max()
                .unwrap_or(0)
                .max("LOCATION".len());
            out.push_str(&format!(
                "{:sev_w$}  {:rule_w$}  {:loc_w$}  DETAIL\n",
                "SEVERITY", "LAYER", "LOCATION"
            ));
            for f in &self.findings {
                out.push_str(&format!(
                    "{:sev_w$}  {:rule_w$}  {:loc_w$}  {}\n",
                    f.severity.to_string(),
                    f.rule.id(),
                    f.location,
                    f.detail
                ));
            }
        }
        out.push_str(&format!(
            "linted {} file(s): {} panic-path site(s) ({} annotated), \
             {} anchor(s) cross-checked, {} lock class(es) / {} order edge(s), \
             {} durability class(es) / {} contract site(s): \
             {} error(s), {} warning(s), {} info\n",
            self.files_scanned,
            self.sites_unannotated + self.sites_annotated,
            self.sites_annotated,
            self.anchors_checked,
            self.lock_classes.len(),
            self.lock_edges.len(),
            self.durability_classes.len(),
            self.durability_contracts.len(),
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable JSON, same finding shape as `eos check --json`:
    /// `{"clean": bool, "files": n, "anchors": n,
    ///   "findings": [{"severity", "layer", "location", "detail"}, …],
    ///   "lock_classes": [{"class", "rank", "io"}, …],
    ///   "lock_edges": [{"from", "to", "at"}, …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"clean\":{},\"files\":{},\"anchors\":{},\"findings\":[",
            self.is_clean(),
            self.files_scanned,
            self.anchors_checked
        ));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"layer\":\"{}\",\"location\":{},\"detail\":{}}}",
                f.severity,
                f.rule,
                json_string(&f.location),
                json_string(&f.detail)
            ));
        }
        out.push_str("],\"lock_classes\":[");
        for (i, c) in self.lock_classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":{},\"rank\":{},\"io\":\"{}\"}}",
                json_string(&c.name),
                c.rank,
                if c.io_allowed { "allowed" } else { "forbidden" }
            ));
        }
        out.push_str("],\"lock_edges\":[");
        for (i, e) in self.lock_edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"from\":{},\"to\":{},\"at\":{}}}",
                json_string(&e.from),
                json_string(&e.to),
                json_string(&e.location)
            ));
        }
        out.push_str("],\"durability_classes\":[");
        for (i, c) in self.durability_classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":{},\"requires\":{}}}",
                json_string(&c.name),
                match &c.requires {
                    Some(r) => json_string(r),
                    None => "null".into(),
                }
            ));
        }
        out.push_str("],\"durability_contracts\":[");
        for (i, s) in self.durability_contracts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let list = |v: &[String]| {
                let mut inner = String::from("[");
                for (j, c) in v.iter().enumerate() {
                    if j > 0 {
                        inner.push(',');
                    }
                    inner.push_str(&json_string(c));
                }
                inner.push(']');
                inner
            };
            out.push_str(&format!(
                "{{\"at\":{},\"seals\":{},\"mutates\":{}}}",
                json_string(&s.location),
                list(&s.seals),
                list(&s.mutates)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Graphviz DOT rendering of the L5 lock hierarchy and the observed
    /// acquisition-order edges (`eos lint --locks-dot`).
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph eos_locks {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        for c in &self.lock_classes {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\nrank {} io {}\"{}];\n",
                c.name,
                c.name,
                c.rank,
                if c.io_allowed { "allowed" } else { "forbidden" },
                if c.io_allowed {
                    ", style=filled, fillcolor=lightgrey"
                } else {
                    ""
                },
            ));
        }
        for e in &self.lock_edges {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
                e.from,
                e.to,
                e.location.replace('"', "'")
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Graphviz DOT rendering of the L6 durability contract
    /// (`eos lint --durability-dot`): one node per class, a `requires`
    /// edge from each class to the class whose seal must precede it,
    /// and one record node per annotated write/sync site.
    pub fn to_durability_dot(&self) -> String {
        let mut out = String::from(
            "digraph eos_durability {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        for c in &self.durability_classes {
            out.push_str(&format!("  \"{}\" [label=\"{}\"];\n", c.name, c.name));
            if let Some(req) = &c.requires {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\" [label=\"requires seal of\"];\n",
                    c.name, req
                ));
            }
        }
        for s in &self.durability_contracts {
            let site = format!("site: {}", s.location.replace('"', "'"));
            out.push_str(&format!("  \"{site}\" [shape=note, fontsize=9];\n"));
            for c in &s.mutates {
                out.push_str(&format!(
                    "  \"{site}\" -> \"{c}\" [label=\"mutates\", style=dashed];\n"
                ));
            }
            for c in &s.seals {
                out.push_str(&format!(
                    "  \"{site}\" -> \"{c}\" [label=\"seals\", style=dotted];\n"
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string encoder (the workspace has no serde).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let r = Report::default();
        assert!(r.is_clean());
        assert!(r.render_table().contains("0 error(s)"));
        assert!(r.to_json().starts_with("{\"clean\":true"));
    }

    #[test]
    fn lock_tables_render_into_json() {
        let mut r = Report::default();
        r.lock_classes.push(LockClassRow {
            name: "commit.group".into(),
            rank: 10,
            io_allowed: false,
        });
        r.lock_edges.push(LockEdgeRow {
            from: "commit.group".into(),
            to: "store.latch".into(),
            location: "crates/core/src/concurrent.rs:1".into(),
        });
        let json = r.to_json();
        assert!(json.contains(
            "\"lock_classes\":[{\"class\":\"commit.group\",\"rank\":10,\"io\":\"forbidden\"}]"
        ));
        assert!(json.contains("\"lock_edges\":[{\"from\":\"commit.group\""));
        assert!(r
            .render_table()
            .contains("1 lock class(es) / 1 order edge(s)"));
        let dot = r.to_dot();
        assert!(dot.contains("digraph eos_locks"));
        assert!(dot.contains("\"commit.group\" -> \"store.latch\""));
        assert!(dot.contains("rank 10 io forbidden"));
    }

    #[test]
    fn durability_tables_render_into_json_and_dot() {
        let mut r = Report::default();
        r.durability_classes.push(DurabilityClassRow {
            name: "undo-image".into(),
            requires: None,
        });
        r.durability_classes.push(DurabilityClassRow {
            name: "committed-page".into(),
            requires: Some("undo-image".into()),
        });
        r.durability_contracts.push(DurabilityContractRow {
            location: "crates/core/src/store/logged.rs:1".into(),
            seals: vec!["undo-image".into()],
            mutates: vec![],
        });
        let json = r.to_json();
        assert!(json.contains("{\"class\":\"undo-image\",\"requires\":null}"));
        assert!(json.contains("{\"class\":\"committed-page\",\"requires\":\"undo-image\"}"));
        assert!(json.contains("\"seals\":[\"undo-image\"],\"mutates\":[]"));
        let dot = r.to_durability_dot();
        assert!(dot.contains("digraph eos_durability"));
        assert!(dot.contains("\"committed-page\" -> \"undo-image\""));
        assert!(dot.contains("seals"));
        assert!(r
            .render_table()
            .contains("2 durability class(es) / 1 contract site(s)"));
    }

    #[test]
    fn error_findings_fail_and_render() {
        let mut r = Report::default();
        r.findings.push(Finding {
            severity: Severity::Info,
            rule: Rule::Ratchet,
            location: "eos-core".into(),
            detail: "can tighten".into(),
        });
        assert!(r.is_clean());
        r.findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::PanicPath,
            location: "crates/core/src/object.rs:12".into(),
            detail: "`unwrap()` without annotation".into(),
        });
        assert!(!r.is_clean());
        let table = r.render_table();
        assert!(table.contains("panic-path"));
        assert!(table.contains("object.rs:12"));
        let json = r.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"layer\":\"panic-path\""));
    }
}
