//! A small hand-rolled Rust lexer — just enough structure for the lint
//! rules, none of the weight of a real parser.
//!
//! The build is fully offline (no `syn`), and the rules only need to
//! know four things a plain `grep` gets wrong:
//!
//! 1. what is a **comment** (so `unwrap` in prose is not a finding, and
//!    so `// lint: allow(...)` annotations can be read back out),
//! 2. what is a **string literal** — including raw strings `r#"…"#` of
//!    any hash depth and byte strings — so quoted code is not scanned,
//! 3. what is an **identifier vs. a lifetime vs. a char literal**
//!    (`'a'` vs `'a`), and
//! 4. where **brackets open and close**, so rules can track scopes and
//!    match `[` … `]` pairs.
//!
//! Everything else (numbers, punctuation) is tokenized shallowly.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token.
    pub kind: Kind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token kinds the rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal: raw text plus decoded value when it fits.
    Int {
        /// The literal exactly as written (`0x454F_5352`).
        raw: String,
        /// Decoded value (suffix and underscores stripped), if valid.
        value: Option<u128>,
    },
    /// Any string-ish literal (string, raw string, byte string, char).
    /// The contents are deliberately dropped.
    Str,
    /// A lifetime (`'a`) — kept distinct so it is never a char literal.
    Lifetime,
    /// A `//` or `/* */` comment; text excludes the delimiters.
    Comment(String),
    /// Single punctuation character (`.`, `[`, `{`, `!`, …).
    Punct(char),
}

impl Tok {
    /// Is this token the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, Kind::Ident(i) if i == s)
    }

    /// Is this token the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }
}

/// Decode an integer literal: underscores stripped, `0x`/`0o`/`0b`
/// prefixes honoured, a trailing type suffix (`u32`, `usize`, …)
/// ignored.
pub fn parse_int(raw: &str) -> Option<u128> {
    let s: String = raw.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(rest) = s.strip_prefix("0x").or(s.strip_prefix("0X")) {
        (rest, 16)
    } else if let Some(rest) = s.strip_prefix("0o") {
        (rest, 8)
    } else if let Some(rest) = s.strip_prefix("0b") {
        (rest, 2)
    } else {
        (s.as_str(), 10)
    };
    // Cut a type suffix: the first char that is not a digit of `radix`.
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    u128::from_str_radix(&digits[..end], radix).ok()
}

/// Tokenize `src`. Comments are tokens too — rules that want only code
/// filter them out; rules that want annotations read them.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Comment(src[start..i].to_string()),
                    line,
                });
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                let tok_line = line;
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                toks.push(Tok {
                    kind: Kind::Comment(src[start..end].to_string()),
                    line: tok_line,
                });
            }
            '"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    line: tok_line,
                });
            }
            'r' | 'b' if starts_raw_or_bytestr(b, i) => {
                let tok_line = line;
                i = skip_prefixed_string(b, i, &mut line);
                toks.push(Tok {
                    kind: Kind::Str,
                    line: tok_line,
                });
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes with a
                // `'` within a few characters; a lifetime never closes.
                let (kind, next) = lex_quote(b, i, &mut line);
                toks.push(Tok { kind, line });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `1..2` is a range, not a float: stop before `..`.
                    if b[i] == b'.' && b.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                let raw = src[start..i].to_string();
                let value = parse_int(&raw);
                toks.push(Tok {
                    kind: Kind::Int { raw, value },
                    line,
                });
            }
            c => {
                toks.push(Tok {
                    kind: Kind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Does position `i` start a raw string (`r"`, `r#`), byte string
/// (`b"`), or raw byte string (`br"`, `br#`)?
fn starts_raw_or_bytestr(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skip a plain `"…"` string starting at `i` (the opening quote).
/// Returns the index just past the closing quote.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skip `r"…"`, `r#"…"#…`, `b"…"`, `b'…'`, `br#"…"#` starting at the
/// prefix letter.
fn skip_prefixed_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    let mut raw = false;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        raw |= b[j] == b'r';
        j += 1;
    }
    if !raw {
        // b"…" or b'…': ordinary escape rules.
        if b.get(j) == Some(&b'\'') {
            let mut k = j + 1;
            if b.get(k) == Some(&b'\\') {
                k += 2;
            } else {
                k += 1;
            }
            if b.get(k) == Some(&b'\'') {
                k += 1;
            }
            return k;
        }
        return skip_string(b, j, line);
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return j; // not actually a raw string; resync
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime) at `i` (the
/// quote).
fn lex_quote(b: &[u8], i: usize, line: &mut u32) -> (Kind, usize) {
    // Escape: definitely a char literal.
    if b.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (Kind::Str, j + 1);
    }
    // `'X'` with any single char X (multi-byte UTF-8 included).
    if let Some(&n) = b.get(i + 1) {
        let char_len = utf8_len(n);
        if b.get(i + 1 + char_len) == Some(&b'\'') {
            if n == b'\n' {
                *line += 1;
            }
            return (Kind::Str, i + 2 + char_len);
        }
    }
    // Lifetime: consume the identifier.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    (Kind::Lifetime, j)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Kind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // x.unwrap() in a comment
            /* panic!() in /* a nested */ block */
            let s = "y.unwrap()";
            let r = r#"panic!("raw")"#;
            let b = b"unwrap";
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1, "{ids:?}");
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == Kind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Kind::Str).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn int_literals_decode() {
        assert_eq!(parse_int("0x454F_5352"), Some(0x454F_5352));
        assert_eq!(parse_int("21"), Some(21));
        assert_eq!(parse_int("4096usize"), Some(4096));
        assert_eq!(parse_int("0b1010"), Some(10));
        assert_eq!(parse_int("zzz"), None);
        let toks = lex("const X: u32 = 0x10;");
        assert!(toks.iter().any(|t| matches!(
            &t.kind,
            Kind::Int {
                value: Some(16),
                ..
            }
        )));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* two\nlines */\nb\n\"str\nstr\"\nc";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .unwrap()
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 7);
    }

    #[test]
    fn range_in_index_is_two_dots_not_a_float() {
        let toks = lex("x[1..4]");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, Kind::Int { value: Some(1), .. })));
    }
}
