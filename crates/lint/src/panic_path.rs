//! Rule L1/L2 — the panic-path audit and its ratchet.
//!
//! Recovery feeds the decode paths raw disk pages, so the §4.5
//! guarantees only hold if corrupt bytes surface as typed `Corrupt*`
//! errors, never as panics. This rule flags every panic-capable
//! construct in non-test production code:
//!
//! * `.unwrap()` / `.expect(…)`
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * range indexing `data[a..b]` (slice-index panics)
//!
//! A site is suppressed only by an inline annotation on the same line
//! or the line directly above:
//!
//! ```text
//! // lint: allow(panic, reason = "len checked 3 lines up")
//! ```
//!
//! Unannotated sites are tallied per crate and bounded by the
//! checked-in ratchet file (`lint.ratchet`): counts may decrease over
//! time, never increase. Sites in the *decode modules* (the strict
//! file list in [`crate::config`]) are errors outright — the ratchet
//! does not apply there.

use std::collections::HashMap;

use crate::annotations::{allowed_lines, AllowRule};
use crate::lexer::{lex, Kind, Tok};
use crate::test_filter::strip_test_code;

/// One panic-capable site in production code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// What was found (`unwrap()`, `panic!`, `range index`, …).
    pub what: &'static str,
    /// Was the site covered by a `lint: allow(panic, …)` annotation?
    pub annotated: bool,
}

/// Scan one file's source text. `name` is only used for messages.
pub fn scan_source(src: &str) -> Vec<Site> {
    let toks = lex(src);
    let allowed = allowed_lines(&toks, AllowRule::Panic);
    let toks = strip_test_code(toks);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment(_)))
        .collect();
    let mut sites = Vec::new();
    let mut push = |line: u32, what: &'static str| {
        sites.push(Site {
            line,
            what,
            annotated: allowed.contains(&line),
        });
    };
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        match &t.kind {
            // `.unwrap()` / `.expect(` — method calls only, so local
            // functions named `unwrap` or fields do not fire.
            Kind::Ident(id)
                if (id == "unwrap" || id == "expect")
                    && i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                push(
                    t.line,
                    if id == "unwrap" {
                        "unwrap()"
                    } else {
                        "expect()"
                    },
                );
            }
            // `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
            Kind::Ident(id)
                if matches!(
                    id.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && code.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                push(
                    t.line,
                    match id.as_str() {
                        "panic" => "panic!",
                        "unreachable" => "unreachable!",
                        "todo" => "todo!",
                        _ => "unimplemented!",
                    },
                );
            }
            // Range indexing `expr[a..b]`: a `[` in index position (the
            // previous token ends an expression) whose bracket contents
            // contain `..` at depth 1.
            Kind::Punct('[') if i > 0 && ends_expression(code[i - 1]) => {
                if let Some(close) = matching_bracket(&code, i) {
                    if has_top_level_range(&code[i + 1..close]) {
                        push(t.line, "range index");
                        // Do not skip the contents: nested indexes
                        // inside still get their own findings.
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    sites
}

/// Does `t` end an expression, making a following `[` an index (not an
/// array literal, attribute, or type)?
fn ends_expression(t: &Tok) -> bool {
    match &t.kind {
        Kind::Ident(id) => !matches!(
            id.as_str(),
            // Keywords after which `[` starts an array/type, not an index.
            "return" | "break" | "in" | "as" | "mut" | "ref" | "else" | "match"
        ),
        Kind::Punct(c) => matches!(c, ']' | ')'),
        Kind::Int { .. } | Kind::Str => true,
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`, if any.
fn matching_bracket(code: &[&Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            Kind::Punct('[') => depth += 1,
            Kind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does the bracket body contain a `..` at depth 0 (i.e. the index is a
/// range)? Nested brackets/parens are skipped so `a[f(b..c)]` does not
/// fire.
fn has_top_level_range(body: &[&Tok]) -> bool {
    let mut depth = 0i32;
    let mut j = 0;
    while j < body.len() {
        match body[j].kind {
            Kind::Punct('[') | Kind::Punct('(') | Kind::Punct('{') => depth += 1,
            Kind::Punct(']') | Kind::Punct(')') | Kind::Punct('}') => depth -= 1,
            Kind::Punct('.') if depth == 0 && body.get(j + 1).is_some_and(|t| t.is_punct('.')) => {
                return true;
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// Parsed ratchet file: crate name → allowed unannotated site count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// `(crate, allowed)` pairs in file order.
    pub entries: Vec<(String, usize)>,
}

impl Ratchet {
    /// Parse the ratchet file. Lines are `crate-name count`; `#`
    /// comments and blank lines are ignored. Malformed lines are
    /// reported as errors by the caller via the `Err` branch.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut entries = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(name), Some(count), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {}: expected `crate count`", no + 1));
            };
            let count: usize = count
                .parse()
                .map_err(|_| format!("line {}: bad count {count:?}", no + 1))?;
            entries.push((name.to_string(), count));
        }
        Ok(Ratchet { entries })
    }

    /// Allowed count for `krate`, if listed.
    pub fn allowed(&self, krate: &str) -> Option<usize> {
        self.entries
            .iter()
            .find(|(n, _)| n == krate)
            .map(|(_, c)| *c)
    }

    /// Render back to file form (sorted, commented header).
    pub fn render(counts: &HashMap<String, usize>) -> String {
        let mut names: Vec<&String> = counts.keys().collect();
        names.sort();
        let mut out = String::from(
            "# eos-lint panic-path ratchet — unannotated panic-capable sites\n\
             # per crate. Counts may only go DOWN: harden a site (typed\n\
             # errors) or annotate it (`// lint: allow(panic, reason = ...)`)\n\
             # and run `eos lint --update-ratchet` to tighten.\n",
        );
        for name in names {
            out.push_str(&format!("{name} {}\n", counts[name]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_construct_once() {
        let src = r#"
fn f(data: &[u8]) -> u32 {
    let x = data.first().unwrap();
    let y: [u8; 4] = data[0..4].try_into().expect("len");
    if *x > 9 { panic!("bad") }
    match y[0] { 0 => unreachable!(), _ => todo!() }
}
"#;
        let sites = scan_source(src);
        let whats: Vec<&str> = sites.iter().map(|s| s.what).collect();
        assert_eq!(
            whats,
            vec![
                "unwrap()",
                "range index",
                "expect()",
                "panic!",
                "unreachable!",
                "todo!"
            ]
        );
        assert!(sites.iter().all(|s| !s.annotated));
    }

    #[test]
    fn annotation_same_line_or_above_suppresses() {
        let src = r#"
fn f(v: &[u8]) {
    // lint: allow(panic, reason = "length checked above")
    let a = v[0..4].to_vec();
    let b = v.first().unwrap(); // lint: allow(panic, reason = "non-empty by contract")
    let c = v.last().unwrap();
    let _ = (a, b, c);
}
"#;
        let sites = scan_source(src);
        assert_eq!(sites.len(), 3);
        assert!(sites[0].annotated, "annotated from line above");
        assert!(sites[1].annotated, "annotated on same line");
        assert!(!sites[2].annotated, "no annotation");
    }

    #[test]
    fn annotation_without_reason_does_not_suppress() {
        let src = "fn f(v: &[u8]) {\n    // lint: allow(panic)\n    v.first().unwrap();\n}\n";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].annotated, "a reason is mandatory");
    }

    #[test]
    fn test_code_and_comments_are_ignored() {
        let src = r#"
// a.unwrap() in prose
fn prod() { let s = "x.unwrap()"; let _ = s; }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { prod().unwrap(); panic!("in test"); }
}
"#;
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn plain_indexing_and_array_types_do_not_fire() {
        let src = r#"
fn f(v: &[u8], i: usize) -> u8 {
    let _t: [u8; 4] = [0; 4];
    let _a = [1, 2, 3];
    let _r = v[f2(0..2)];
    v[i]
}
"#;
        // `v[i]`, array literals, array types, and a range *inside a
        // call* in the index are all fine; only `v[a..b]` fires.
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap_or(0).max(v.unwrap_or_default()) }";
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn ratchet_roundtrip_and_lookup() {
        let r = Ratchet::parse("# header\neos-core 10\neos-buddy 0\n").unwrap();
        assert_eq!(r.allowed("eos-core"), Some(10));
        assert_eq!(r.allowed("eos-buddy"), Some(0));
        assert_eq!(r.allowed("eos-pager"), None);
        assert!(Ratchet::parse("eos-core ten").is_err());
        assert!(Ratchet::parse("eos-core 1 2").is_err());
        let mut counts = HashMap::new();
        counts.insert("eos-core".to_string(), 7usize);
        let rendered = Ratchet::render(&counts);
        assert_eq!(
            Ratchet::parse(&rendered).unwrap().allowed("eos-core"),
            Some(7)
        );
    }
}
