//! eos-lint — source-level invariant linter for the EOS workspace.
//!
//! `eos-check` (PR 1) audits the *on-disk* invariants; this crate
//! audits the *source* invariants the paper's design depends on, as a
//! CI gate in front of clippy:
//!
//! * **panic-path** (L1) + **ratchet** (L2): decode paths must return
//!   typed errors, never panic, on corrupt bytes. Zero tolerance in
//!   the strict decode modules; a monotonically-decreasing per-crate
//!   budget (`lint.ratchet`) everywhere else.
//! * **latch** (L3): §4.5 short-duration-latch discipline — no
//!   `parking_lot` guard held across volume I/O or a second latch.
//! * **format-drift** (L4): FORMAT.md anchor values must equal the
//!   constants in the codecs.
//! * **lockorder** (L5): interprocedural lock-order analysis
//!   (eos-lockdep) — declared lock classes must be acquired in strictly
//!   increasing rank order, volume I/O must not be reachable while an
//!   `io = forbidden` class is held, and the class table must match the
//!   DESIGN.md §13 hierarchy anchors.
//! * **durability** (L6): interprocedural durability-ordering analysis
//!   (eos-crashdep) — annotated volume writes must not be reachable
//!   before the sync that seals their prerequisite class (undo before
//!   overwrite, data before log, inactive-slot superblock publish), and
//!   the class table must match the DESIGN.md §15 contract catalogue.
//!
//! See DESIGN.md §10 for the rule catalogue and annotation syntax.

pub mod annotations;
pub mod crashdep;
pub mod drift;
pub mod latch;
pub mod lexer;
pub mod lockdep;
pub mod panic_path;
pub mod report;
pub mod test_filter;

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use panic_path::Ratchet;
use report::{Finding, Report, Rule, Severity};

/// Crates whose `src/` trees are subject to the panic-path rules:
/// `(crate name, source dir relative to the workspace root)`.
pub const PANIC_CRATES: [(&str, &str); 5] = [
    ("eos-core", "crates/core/src"),
    ("eos-buddy", "crates/buddy/src"),
    ("eos-pager", "crates/pager/src"),
    ("eos-check", "crates/check/src"),
    ("eos-obs", "crates/obs/src"),
];

/// Decode modules with *zero tolerance*: recovery feeds these raw disk
/// pages, so any unannotated panic-capable site is an error outright
/// (the ratchet never applies here).
pub const STRICT_FILES: [&str; 4] = [
    "crates/core/src/object.rs",
    "crates/core/src/node.rs",
    "crates/core/src/wal.rs",
    "crates/core/src/durable.rs",
];

/// Directories subject to the latch-discipline rule. `crates/pager` is
/// deliberately absent: its mutex guards the file handle and *is* the
/// bottom of the lock order.
pub const LATCH_DIRS: [&str; 3] = ["crates/buddy/src", "crates/core/src", "crates/obs/src"];

/// Source files scanned for `// format-anchor:` comments.
pub const DRIFT_SOURCES: [&str; 6] = [
    "crates/core/src/object.rs",
    "crates/core/src/node.rs",
    "crates/core/src/wal.rs",
    "crates/core/src/durable.rs",
    "crates/buddy/src/dir.rs",
    "src/catalog.rs",
];

/// Crates whose sources feed the L5 lock-order analysis — one call
/// graph per crate. `crates/pager` is included here even though L3
/// exempts it: its two locks (cache, volume) are exactly where the
/// bottom of the order lives.
pub const LOCKDEP_CRATES: [(&str, &str); 4] = [
    ("eos-core", "crates/core/src"),
    ("eos-buddy", "crates/buddy/src"),
    ("eos-pager", "crates/pager/src"),
    ("eos-obs", "crates/obs/src"),
];

/// Crates that must declare at least one lock class *and* carry a
/// `lockorder:<crate>` pin in `lint.ratchet` — the concurrency
/// front-end and the I/O bottom. Deleting their declarations or pins
/// is an error, not a silent pass.
pub const LOCKDEP_PINNED: [&str; 2] = ["eos-core", "eos-pager"];

/// Crates whose sources feed the L6 durability-ordering analysis.
/// `eos-core` owns the commit path; `eos-pager` is scanned so any
/// future barrier logic pushed down into the volume layer is covered
/// by the same contracts.
pub const CRASHDEP_CRATES: [(&str, &str); 2] = [
    ("eos-core", "crates/core/src"),
    ("eos-pager", "crates/pager/src"),
];

/// Crates that must declare at least one durability class *and* carry
/// a `durability:<crate>` pin in `lint.ratchet`. Only `eos-core` — the
/// commit path lives there; eos-pager currently has no barrier logic
/// of its own.
pub const DURABILITY_PINNED: [&str; 1] = ["eos-core"];

/// FORMAT.md anchor key that must equal the number of declared
/// durability classes — the L6 analogue of the §13 hierarchy count.
pub const DURABILITY_CLASSES_ANCHOR: &str = "DURABILITY_CLASSES";

/// The doc side of the L5 hierarchy cross-check, relative to the
/// workspace root.
pub const DESIGN_DOC: &str = "DESIGN.md";

/// The checked-in ratchet file, relative to the workspace root.
pub const RATCHET_FILE: &str = "lint.ratchet";

/// The doc side of the drift rule, relative to the workspace root.
pub const FORMAT_DOC: &str = "FORMAT.md";

/// Minimum number of cross-checked anchors for the drift rule to count
/// as wired up at all — guards against the rule being silently defused
/// by deleting anchors.
pub const MIN_ANCHORS: usize = 20;

/// Linter options (mirrors the CLI flags).
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Also report unannotated non-strict sites individually (Info).
    pub verbose: bool,
    /// Rewrite `lint.ratchet` with the observed counts instead of
    /// comparing against it.
    pub update_ratchet: bool,
}

/// Lint the workspace rooted at `root`. I/O errors (unreadable files)
/// are returned as `Err`; everything the rules find lands in the
/// report.
pub fn lint_workspace(root: &Path, opts: &Options) -> io::Result<Report> {
    let mut report = Report::default();

    run_panic_rules(root, opts, &mut report)?;
    run_latch_rule(root, &mut report)?;
    run_drift_rule(root, &mut report)?;
    run_lockdep_rule(root, opts, &mut report)?;
    run_crashdep_rule(root, opts, &mut report)?;

    Ok(report)
}

/// L1 (strict decode modules) + L2 (per-crate ratchet).
fn run_panic_rules(root: &Path, opts: &Options, report: &mut Report) -> io::Result<()> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for (krate, _) in PANIC_CRATES {
        counts.insert(krate.to_string(), 0);
    }

    for (krate, dir) in PANIC_CRATES {
        for path in rust_files(&root.join(dir))? {
            let rel = display_path(root, &path);
            let strict = STRICT_FILES.contains(&rel.as_str());
            let src = fs::read_to_string(&path)?;
            report.files_scanned += 1;
            for site in panic_path::scan_source(&src) {
                if site.annotated {
                    report.sites_annotated += 1;
                    continue;
                }
                report.sites_unannotated += 1;
                if strict {
                    report.findings.push(Finding {
                        severity: Severity::Error,
                        rule: Rule::PanicPath,
                        location: format!("{rel}:{}", site.line),
                        detail: format!(
                            "{} in a decode module — return a typed `Corrupt*` error \
                             or annotate with `// lint: allow(panic, reason = ...)`",
                            site.what
                        ),
                    });
                } else {
                    *counts.entry(krate.to_string()).or_default() += 1;
                    if opts.verbose {
                        report.findings.push(Finding {
                            severity: Severity::Info,
                            rule: Rule::PanicPath,
                            location: format!("{rel}:{}", site.line),
                            detail: format!("{} (counted against the {krate} ratchet)", site.what),
                        });
                    }
                }
            }
        }
    }

    let ratchet_path = root.join(RATCHET_FILE);
    if opts.update_ratchet {
        // The panic counts are observed; the L5 `lockorder:` and L6
        // `durability:` pins are a hand-managed contract. Carry
        // existing pins through the rewrite (defaulting the required
        // crates to zero) so `--update-ratchet` can never loosen or
        // drop them.
        let existing = fs::read_to_string(&ratchet_path).ok();
        let mut text = Ratchet::render(&counts);
        text.push_str(
            "# eos-lockdep (L5) / eos-crashdep (L6) pins — unannotated\n\
             # findings allowed per crate. Hand-managed; zero means zero.\n",
        );
        let mut pins: Vec<(String, usize)> = existing
            .as_deref()
            .and_then(|t| Ratchet::parse(t).ok())
            .map(|r| {
                r.entries
                    .into_iter()
                    .filter(|(n, _)| n.starts_with("lockorder:") || n.starts_with("durability:"))
                    .collect()
            })
            .unwrap_or_default();
        for krate in LOCKDEP_PINNED {
            let name = format!("lockorder:{krate}");
            if !pins.iter().any(|(n, _)| *n == name) {
                pins.push((name, 0));
            }
        }
        for krate in DURABILITY_PINNED {
            let name = format!("durability:{krate}");
            if !pins.iter().any(|(n, _)| *n == name) {
                pins.push((name, 0));
            }
        }
        pins.sort();
        for (name, count) in pins {
            text.push_str(&format!("{name} {count}\n"));
        }
        fs::write(&ratchet_path, text)?;
        report.findings.push(Finding {
            severity: Severity::Info,
            rule: Rule::Ratchet,
            location: RATCHET_FILE.to_string(),
            detail: format!(
                "ratchet rewritten with observed counts: {}",
                fmt_counts(&counts)
            ),
        });
        return Ok(());
    }

    let text = match fs::read_to_string(&ratchet_path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::Ratchet,
                location: RATCHET_FILE.to_string(),
                detail: "ratchet file missing — run `eos lint --update-ratchet` and commit it"
                    .to_string(),
            });
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let ratchet = match Ratchet::parse(&text) {
        Ok(r) => r,
        Err(msg) => {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::Ratchet,
                location: RATCHET_FILE.to_string(),
                detail: format!("unparseable ratchet file: {msg}"),
            });
            return Ok(());
        }
    };

    let mut names: Vec<&String> = counts.keys().collect();
    names.sort();
    for name in names {
        let observed = counts[name];
        match ratchet.allowed(name) {
            None => report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::Ratchet,
                location: name.clone(),
                detail: format!(
                    "crate not listed in {RATCHET_FILE} — run `eos lint --update-ratchet`"
                ),
            }),
            Some(allowed) if observed > allowed => report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::Ratchet,
                location: name.clone(),
                detail: format!(
                    "{observed} unannotated panic-path site(s), ratchet allows {allowed} \
                     — harden or annotate the new site(s); the ratchet never goes up"
                ),
            }),
            Some(allowed) if observed < allowed => report.findings.push(Finding {
                severity: Severity::Info,
                rule: Rule::Ratchet,
                location: name.clone(),
                detail: format!(
                    "{observed} unannotated site(s), ratchet allows {allowed} \
                     — tighten with `eos lint --update-ratchet`"
                ),
            }),
            Some(_) => {}
        }
    }
    Ok(())
}

/// L3 — latch discipline over the configured directories.
fn run_latch_rule(root: &Path, report: &mut Report) -> io::Result<()> {
    for dir in LATCH_DIRS {
        for path in rust_files(&root.join(dir))? {
            let rel = display_path(root, &path);
            let src = fs::read_to_string(&path)?;
            for site in latch::scan_source(&src) {
                if site.annotated {
                    continue;
                }
                report.findings.push(Finding {
                    severity: Severity::Error,
                    rule: Rule::Latch,
                    location: format!("{rel}:{}", site.line),
                    detail: site.detail,
                });
            }
        }
    }
    Ok(())
}

/// L4 — FORMAT.md ↔ code drift.
fn run_drift_rule(root: &Path, report: &mut Report) -> io::Result<()> {
    let md = fs::read_to_string(root.join(FORMAT_DOC))?;
    let (doc_anchors, doc_problems) = drift::parse_doc_anchors(&md);
    for p in doc_problems {
        report.findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::FormatDrift,
            location: p.location,
            detail: p.detail,
        });
    }

    let mut sources = Vec::new();
    for rel in DRIFT_SOURCES {
        let path = root.join(rel);
        if !path.exists() {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::FormatDrift,
                location: rel.to_string(),
                detail: "configured drift source is missing".to_string(),
            });
            continue;
        }
        let src = fs::read_to_string(&path)?;
        let (anchors, problems) = drift::parse_source_anchors(&src);
        for p in problems {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::FormatDrift,
                location: format!("{rel}:{}", p.location),
                detail: p.detail,
            });
        }
        sources.push((rel.to_string(), anchors));
    }

    let (problems, matched) = drift::cross_check(&doc_anchors, &sources);
    for p in problems {
        report.findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::FormatDrift,
            location: p.location,
            detail: p.detail,
        });
    }
    report.anchors_checked = matched;
    if matched < MIN_ANCHORS {
        report.findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::FormatDrift,
            location: FORMAT_DOC.to_string(),
            detail: format!(
                "only {matched} anchor(s) cross-checked; at least {MIN_ANCHORS} required \
                 — the drift gate must not be defused by deleting anchors"
            ),
        });
    }
    Ok(())
}

/// L5 — interprocedural lock-order analysis (eos-lockdep, static half).
fn run_lockdep_rule(root: &Path, opts: &Options, report: &mut Report) -> io::Result<()> {
    let mut crates = Vec::new();
    for (krate, dir) in LOCKDEP_CRATES {
        let mut files = Vec::new();
        for path in rust_files(&root.join(dir))? {
            files.push(lockdep::SourceFile {
                path: display_path(root, &path),
                src: fs::read_to_string(&path)?,
            });
        }
        crates.push(lockdep::CrateInput {
            name: krate.to_string(),
            files,
        });
    }

    let design = match fs::read_to_string(root.join(DESIGN_DOC)) {
        Ok(t) => Some(t),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::LockOrder,
                location: DESIGN_DOC.to_string(),
                detail: "DESIGN.md missing — the lock hierarchy (§13) cannot be cross-checked"
                    .to_string(),
            });
            None
        }
        Err(e) => return Err(e),
    };

    let analysis = lockdep::analyze(&crates, design.as_deref());
    for site in &analysis.sites {
        if site.annotated {
            continue;
        }
        report.findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::LockOrder,
            location: site.location.clone(),
            detail: site.detail.clone(),
        });
    }

    // Anti-defusal: the pinned crates must actually declare classes —
    // deleting the `// lock-class:` comments must not read as clean.
    for krate in LOCKDEP_PINNED {
        if analysis.classes_in(krate) == 0 {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::LockOrder,
                location: krate.to_string(),
                detail: format!(
                    "no `// lock-class:` declarations found in {krate} — the lock-order \
                     rule must not be defused by deleting declarations (see DESIGN.md §13)"
                ),
            });
        }
    }

    // Ratchet pins: `lockorder:<crate> N` rows bound the unannotated
    // finding count per pinned crate (zero in this repo). A fresh
    // `--update-ratchet` rewrite re-emits the pins itself, so the
    // comparison is skipped on that run, like L2.
    if !opts.update_ratchet {
        if let Ok(text) = fs::read_to_string(root.join(RATCHET_FILE)) {
            if let Ok(ratchet) = Ratchet::parse(&text) {
                for krate in LOCKDEP_PINNED {
                    let name = format!("lockorder:{krate}");
                    match ratchet.allowed(&name) {
                        None => report.findings.push(Finding {
                            severity: Severity::Error,
                            rule: Rule::LockOrder,
                            location: RATCHET_FILE.to_string(),
                            detail: format!(
                                "missing `{name}` pin — add `{name} 0` (the lock-order \
                                 budget is hand-managed and never goes up)"
                            ),
                        }),
                        Some(allowed) => {
                            let observed = analysis.unannotated_in(krate);
                            if observed > allowed {
                                report.findings.push(Finding {
                                    severity: Severity::Error,
                                    rule: Rule::LockOrder,
                                    location: name,
                                    detail: format!(
                                        "{observed} unannotated lock-order finding(s) in \
                                         {krate}, pin allows {allowed}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    report.lock_classes = analysis
        .classes
        .iter()
        .map(|c| report::LockClassRow {
            name: c.name.clone(),
            rank: c.rank,
            io_allowed: c.io_allowed,
        })
        .collect();
    report.lock_edges = analysis
        .edges
        .iter()
        .map(|e| report::LockEdgeRow {
            from: e.from.clone(),
            to: e.to.clone(),
            location: e.location.clone(),
        })
        .collect();
    Ok(())
}

/// Run just the L6 analysis over the workspace at `root` — the static
/// half of the barrier census, consumed by `tests/barrier_mutation.rs`
/// to cross-check the runtime sync enumeration against the annotated
/// contracts.
pub fn crashdep_analysis(root: &Path) -> io::Result<crashdep::Analysis> {
    let mut crates = Vec::new();
    for (krate, dir) in CRASHDEP_CRATES {
        let mut files = Vec::new();
        for path in rust_files(&root.join(dir))? {
            files.push(lockdep::SourceFile {
                path: display_path(root, &path),
                src: fs::read_to_string(&path)?,
            });
        }
        crates.push(lockdep::CrateInput {
            name: krate.to_string(),
            files,
        });
    }
    let design = fs::read_to_string(root.join(DESIGN_DOC)).ok();
    Ok(crashdep::analyze(&crates, design.as_deref()))
}

/// L6 — interprocedural durability-ordering analysis (eos-crashdep,
/// static half).
fn run_crashdep_rule(root: &Path, opts: &Options, report: &mut Report) -> io::Result<()> {
    let analysis = crashdep_analysis(root)?;
    for site in &analysis.sites {
        if site.annotated {
            continue;
        }
        report.findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::Durability,
            location: site.location.clone(),
            detail: site.detail.clone(),
        });
    }

    // Anti-defusal: the pinned crates must actually declare durability
    // classes — deleting the `// durability-class:` comments must not
    // read as clean.
    for krate in DURABILITY_PINNED {
        if analysis.classes_in(krate) == 0 {
            report.findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::Durability,
                location: krate.to_string(),
                detail: format!(
                    "no `// durability-class:` declarations found in {krate} — the \
                     durability rule must not be defused by deleting declarations \
                     (see DESIGN.md §15)"
                ),
            });
        }
    }

    // The class count is a FORMAT.md anchor (`DURABILITY_CLASSES`),
    // paired with the `wal.rs` constant by L4; this check closes the
    // third side of the triangle: declared classes ↔ documented count.
    match fs::read_to_string(root.join(FORMAT_DOC)) {
        Ok(md) => {
            let (anchors, _) = drift::parse_doc_anchors(&md);
            match anchors.iter().find(|a| a.key == DURABILITY_CLASSES_ANCHOR) {
                None => report.findings.push(Finding {
                    severity: Severity::Error,
                    rule: Rule::Durability,
                    location: FORMAT_DOC.to_string(),
                    detail: format!(
                        "missing `{DURABILITY_CLASSES_ANCHOR}` anchor — the durability-class \
                         count must be documented in FORMAT.md"
                    ),
                }),
                Some(a) if a.value as usize != analysis.classes.len() => {
                    report.findings.push(Finding {
                        severity: Severity::Error,
                        rule: Rule::Durability,
                        location: FORMAT_DOC.to_string(),
                        detail: format!(
                            "{} durability class(es) declared but the \
                             `{DURABILITY_CLASSES_ANCHOR}` anchor says {} — update both \
                             FORMAT.md and the paired constant together",
                            analysis.classes.len(),
                            a.value
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }

    // Ratchet pins: `durability:<crate> N` rows bound the unannotated
    // finding count per pinned crate (zero in this repo), same shape
    // as the L5 `lockorder:` pins.
    if !opts.update_ratchet {
        if let Ok(text) = fs::read_to_string(root.join(RATCHET_FILE)) {
            if let Ok(ratchet) = Ratchet::parse(&text) {
                for krate in DURABILITY_PINNED {
                    let name = format!("durability:{krate}");
                    match ratchet.allowed(&name) {
                        None => report.findings.push(Finding {
                            severity: Severity::Error,
                            rule: Rule::Durability,
                            location: RATCHET_FILE.to_string(),
                            detail: format!(
                                "missing `{name}` pin — add `{name} 0` (the durability \
                                 budget is hand-managed and never goes up)"
                            ),
                        }),
                        Some(allowed) => {
                            let observed = analysis.unannotated_in(krate);
                            if observed > allowed {
                                report.findings.push(Finding {
                                    severity: Severity::Error,
                                    rule: Rule::Durability,
                                    location: name,
                                    detail: format!(
                                        "{observed} unannotated durability finding(s) in \
                                         {krate}, pin allows {allowed}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    report.durability_classes = analysis
        .classes
        .iter()
        .map(|c| report::DurabilityClassRow {
            name: c.name.clone(),
            requires: c.requires.clone(),
        })
        .collect();
    report.durability_contracts = analysis
        .contracts
        .iter()
        .map(|c| report::DurabilityContractRow {
            location: c.location.clone(),
            seals: c.seals.clone(),
            mutates: c.mutates.clone(),
        })
        .collect();
    Ok(())
}

/// All `.rs` files under `dir`, recursively, in a deterministic order.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative display path with `/` separators.
fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn fmt_counts(counts: &HashMap<String, usize>) -> String {
    let mut names: Vec<&String> = counts.keys().collect();
    names.sort();
    names
        .iter()
        .map(|n| format!("{n}={}", counts[n.as_str()]))
        .collect::<Vec<_>>()
        .join(", ")
}
