//! `eos-lint` — standalone binary for the CI gate. The same pass is
//! reachable as `eos lint` through the main CLI.

use std::path::PathBuf;
use std::process::ExitCode;

use eos_lint::{lint_workspace, Options};

const USAGE: &str = "usage: eos-lint [ROOT] [--json] [--locks-dot] [--durability-dot] [--verbose] [--update-ratchet]

Lints the EOS workspace rooted at ROOT (default: current directory):
  panic-path    unwrap/expect/panic!/range-index audit of production code
  ratchet       per-crate unannotated-site budget (lint.ratchet, only decreases)
  latch         no parking_lot guard across volume I/O or a second latch
  format-drift  FORMAT.md anchors vs. the constants in the codecs
  lockorder     interprocedural lock-order analysis (eos-lockdep): declared
                lock classes in rank order, no volume I/O under io=forbidden
                classes, DESIGN.md \u{a7}13 hierarchy drift
  durability    interprocedural durability-ordering analysis (eos-crashdep):
                annotated writes only after the sync sealing their prerequisite
                class, inactive-slot superblock publish, DESIGN.md \u{a7}15 drift

  --json            machine-readable report (same shape as `eos check --json`)
  --locks-dot       emit the lock hierarchy + observed order edges as Graphviz DOT
  --durability-dot  emit the durability classes + contract sites as Graphviz DOT
  --verbose         list every ratcheted site individually
  --update-ratchet  rewrite lint.ratchet with the observed counts
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut locks_dot = false;
    let mut durability_dot = false;
    let mut opts = Options::default();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--locks-dot" => locks_dot = true,
            "--durability-dot" => durability_dot = true,
            "--verbose" => opts.verbose = true,
            "--update-ratchet" => opts.update_ratchet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("eos-lint: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    match lint_workspace(&root, &opts) {
        Ok(report) => {
            if locks_dot {
                print!("{}", report.to_dot());
            } else if durability_dot {
                print!("{}", report.to_durability_dot());
            } else if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_table());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("eos-lint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
