//! Rule L6 — interprocedural durability-ordering analysis
//! (`eos-crashdep`).
//!
//! The crash-consistency of the commit path hangs on a handful of
//! hand-placed ordering barriers: the undo image must be forced before
//! the committed page it protects is overwritten in place, shadowed
//! data must be forced before the commit/abort frame that publishes it,
//! and the superblock may only ever be published into the *inactive*
//! slot. The 266-scenario crash sweep exercises these at runtime; L6 is
//! the static half, so a refactor that silently drops a `sync` fails
//! `eos lint` in seconds instead of a release-mode sweep in minutes.
//!
//! The moving parts mirror L5 (`lockdep.rs`):
//!
//! * **Durability classes.** A global table declared in comments:
//!
//!   ```text
//!   // durability-class: committed-page requires = undo-image
//!   ```
//!
//!   `requires = <class>` means: a write mutating this class is only
//!   safe after a sync *sealing* the required class (and the required
//!   class has not been re-dirtied since). Root classes use
//!   `requires = none`. The table must agree with the
//!   `<!-- durability-class: … -->` anchors in DESIGN.md §15.
//!
//! * **Contract annotations.** Each volume-write site in the commit
//!   path declares the class it mutates; each sync site declares what
//!   it seals; a function may declare classes it assumes sealed at
//!   entry:
//!
//!   ```text
//!   // durability: mutates(undo-image)
//!   wal.append(entry)?;
//!   // durability: seals(undo-image)
//!   wal.sync()?;
//!   // durability: requires(commit-frame)   ← directly above a fn
//!   ```
//!
//!   An annotation covers its own line when trailing, the line below
//!   when standalone (same binding as `lint: allow`). A `seals`/
//!   `mutates` line must contain a call; a `requires` line must be a
//!   `fn` header — anything else is a *dangling annotation* finding, so
//!   contracts cannot drift away from the code they describe.
//!
//! * **Replay + fixed point.** Function bodies are replayed linearly
//!   (conditionals are taken in order — the analysis models the
//!   `sync_on_commit = true` configuration, and branch-sensitive
//!   escapes are the runtime harness's job). Replay tracks the set of
//!   *sealed-and-clean* classes: `seals(c)` inserts `c`, `mutates(c)`
//!   removes it. Resolvable calls (bare `name(…)`, `self.name(…)`,
//!   `Self::name(…)` — the same resolution as L5) propagate callee
//!   summaries: the classes a callee can dirty (`kills`) and the
//!   classes it leaves sealed (`gens`), iterated to a fixed point.
//!
//! * **Findings.**
//!   - a write mutating class `C` with `C requires = R` while `R` is
//!     not sealed (the undo-before-overwrite / data-before-log bugs);
//!   - a resolved call into a function whose declared `requires(…)` is
//!     not satisfied at the call site;
//!   - a `mutates(superblock)` write with no slot-alternation witness
//!     (a literal `1 - …` flip) earlier in the body — the publish could
//!     hit the live slot;
//!   - declaration/annotation hygiene: malformed or conflicting
//!     declarations, unknown classes, dangling annotations, DESIGN.md
//!     §15 anchor drift (both directions).
//!
//! Suppression: `// lint: allow(durability, reason = "…")` on or above
//! the offending line. Known blind spots (documented, covered by the
//! `MutatingVolume` barrier-mutation harness): unresolved receivers,
//! branch-dependent barriers, cross-crate calls.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::annotations::{allowed_lines, AllowRule};
use crate::lexer::{lex, Kind, Tok};
use crate::lockdep::{call_resolvable, CrateInput, KEYWORDS};
use crate::test_filter::strip_test_code;

/// The class name that additionally demands a slot-alternation witness
/// before any write mutating it (DESIGN.md §15: the superblock is the
/// one structure updated in place at a fixed address, so the only safe
/// publish is into the inactive slot, `1 - <live>`).
pub const SLOT_ALTERNATING_CLASS: &str = "superblock";

/// A declared durability class, aggregated over declaration sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuraClassRow {
    /// Global class name (`commit-frame`).
    pub name: String,
    /// Class whose seal must precede any mutation of this one.
    pub requires: Option<String>,
    /// First declaration site, `path:line`.
    pub decl: String,
    /// Crate the first declaration lives in.
    pub krate: String,
}

/// One annotated contract site (a write and/or sync line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractRow {
    /// `path:line` of the annotated call.
    pub location: String,
    /// Classes the line's sync seals.
    pub seals: Vec<String>,
    /// Classes the line's write mutates.
    pub mutates: Vec<String>,
    /// Crate the site lives in.
    pub krate: String,
}

/// One L6 finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuraSite {
    /// `path:line` of the write / call / declaration.
    pub location: String,
    /// What is wrong and how to fix it.
    pub detail: String,
    /// Suppressed by `// lint: allow(durability, …)`?
    pub annotated: bool,
    /// Crate the site lives in (for the per-crate ratchet pins).
    pub krate: String,
}

/// Everything the analysis produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Global class table, sorted by name.
    pub classes: Vec<DuraClassRow>,
    /// Annotated contract sites, sorted by location.
    pub contracts: Vec<ContractRow>,
    /// Findings.
    pub sites: Vec<DuraSite>,
}

impl Analysis {
    /// Unannotated findings attributed to `krate` (the pin quantity).
    pub fn unannotated_in(&self, krate: &str) -> usize {
        self.sites
            .iter()
            .filter(|s| !s.annotated && s.krate == krate)
            .count()
    }

    /// Classes first declared in `krate` (the anti-defusal quantity).
    pub fn classes_in(&self, krate: &str) -> usize {
        self.classes.iter().filter(|c| c.krate == krate).count()
    }

    /// Contract sites in `krate` that seal at least one class — the
    /// static sync-site census the barrier-mutation harness pins.
    pub fn seal_sites_in(&self, krate: &str) -> Vec<&ContractRow> {
        self.contracts
            .iter()
            .filter(|c| c.krate == krate && !c.seals.is_empty())
            .collect()
    }
}

// ---------------------------------------------------------------------
// Declaration and annotation parsing
// ---------------------------------------------------------------------

/// A parsed `// durability-class:` declaration comment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Decl {
    class: String,
    requires: Option<String>,
    line: u32,
}

/// Parse every `durability-class:` comment in a token stream.
/// Malformed declarations are findings, not silent skips.
fn parse_decls(toks: &[Tok]) -> (Vec<Decl>, Vec<(u32, String)>) {
    let mut decls = Vec::new();
    let mut problems = Vec::new();
    for t in toks {
        let Kind::Comment(text) = &t.kind else {
            continue;
        };
        let body = comment_body(text);
        let Some(rest) = body.strip_prefix("durability-class:") else {
            continue;
        };
        match parse_decl_body(rest) {
            Ok((class, requires)) => decls.push(Decl {
                class,
                requires,
                line: t.line,
            }),
            Err(msg) => problems.push((t.line, msg)),
        }
    }
    (decls, problems)
}

fn comment_body(text: &str) -> &str {
    text.trim_start_matches('/')
        .trim_start_matches('*')
        .trim()
        .trim_end_matches("*/")
        .trim()
}

/// `<class> requires = <class>|none`.
fn parse_decl_body(rest: &str) -> Result<(String, Option<String>), String> {
    let err = || {
        "malformed durability-class declaration — expected \
         `durability-class: <class> requires = <class>|none`"
            .to_string()
    };
    let mut parts = rest.split_whitespace();
    let class = parts.next().ok_or_else(err)?;
    if parts.next() != Some("requires") || parts.next() != Some("=") {
        return Err(err());
    }
    let req = parts.next().ok_or_else(err)?;
    if parts.next().is_some() {
        return Err(err());
    }
    let requires = if req == "none" {
        None
    } else {
        Some(req.to_string())
    };
    Ok((class.to_string(), requires))
}

/// A `<!-- durability-class: <class> requires = … -->` anchor from
/// DESIGN.md §15.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocAnchor {
    /// Class the doc row documents.
    pub class: String,
    /// Documented prerequisite class.
    pub requires: Option<String>,
    /// 1-based line in the doc.
    pub line: u32,
}

/// Parse the doc side of the contract. Malformed anchors are problems.
pub fn parse_doc_anchors(md: &str) -> (Vec<DocAnchor>, Vec<(u32, String)>) {
    let mut anchors = Vec::new();
    let mut problems = Vec::new();
    for (idx, line) in md.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let Some(start) = line.find("<!-- durability-class:") else {
            continue;
        };
        let rest = &line[start + "<!-- durability-class:".len()..];
        let Some(end) = rest.find("-->") else {
            problems.push((lineno, "unterminated durability-class anchor".to_string()));
            continue;
        };
        match parse_decl_body(rest[..end].trim()) {
            Ok((class, requires)) => anchors.push(DocAnchor {
                class,
                requires,
                line: lineno,
            }),
            Err(msg) => problems.push((lineno, msg)),
        }
    }
    (anchors, problems)
}

/// The clauses one or more `// durability:` comments bind to a line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Clauses {
    seals: Vec<String>,
    mutates: Vec<String>,
    requires: Vec<String>,
}

impl Clauses {
    fn has_site(&self) -> bool {
        !self.seals.is_empty() || !self.mutates.is_empty()
    }
}

/// Parse every `// durability:` annotation in a token stream into a
/// line → clauses map, using the same trailing/standalone binding as
/// `lint: allow`.
fn parse_annotations(toks: &[Tok]) -> (BTreeMap<u32, Clauses>, Vec<(u32, String)>) {
    let code_lines: HashSet<u32> = toks
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment(_)))
        .map(|t| t.line)
        .collect();
    let mut by_line: BTreeMap<u32, Clauses> = BTreeMap::new();
    let mut problems = Vec::new();
    for t in toks {
        let Kind::Comment(text) = &t.kind else {
            continue;
        };
        let body = comment_body(text);
        let Some(rest) = body.strip_prefix("durability:") else {
            continue;
        };
        let bound = if code_lines.contains(&t.line) {
            t.line
        } else {
            t.line + 1
        };
        match parse_ann_body(rest) {
            Ok(c) => {
                let e = by_line.entry(bound).or_default();
                e.seals.extend(c.seals);
                e.mutates.extend(c.mutates);
                e.requires.extend(c.requires);
            }
            Err(msg) => problems.push((t.line, msg)),
        }
    }
    (by_line, problems)
}

/// `mutates(<c>[, <c>…])` / `seals(…)` / `requires(…)`, any mix, in
/// any order.
fn parse_ann_body(rest: &str) -> Result<Clauses, String> {
    let err = || {
        "malformed durability annotation — expected \
         `durability: [seals(<class>,…)] [mutates(<class>,…)] [requires(<class>,…)]`"
            .to_string()
    };
    let mut out = Clauses::default();
    let mut rest = rest.trim();
    if rest.is_empty() {
        return Err(err());
    }
    while !rest.is_empty() {
        let Some(open) = rest.find('(') else {
            return Err(err());
        };
        let kw = rest[..open].trim();
        let after = &rest[open + 1..];
        let Some(close) = after.find(')') else {
            return Err(err());
        };
        let args: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .collect();
        if args.iter().any(String::is_empty) {
            return Err(err());
        }
        match kw {
            "seals" => out.seals.extend(args),
            "mutates" => out.mutates.extend(args),
            "requires" => out.requires.extend(args),
            _ => return Err(err()),
        }
        rest = after[close + 1..].trim_start();
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Per-function event extraction
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum EvKind {
    /// A sync sealing these classes (by class id).
    Seal(Vec<usize>),
    /// A write dirtying these classes (by class id).
    Mutate(Vec<usize>),
    /// A possibly-resolvable call.
    Call(String),
}

#[derive(Debug, Clone)]
struct Event {
    kind: EvKind,
    line: u32,
    /// Was a `1 - …` slot flip seen earlier in this body?
    slot_witness: bool,
}

#[derive(Debug)]
struct FnBody {
    name: String,
    file: usize,
    /// Declared `requires(…)` classes, by id.
    requires: Vec<usize>,
    events: Vec<Event>,
}

/// Extract every function body in `code` (comments stripped), binding
/// `requires` clauses on the header line, and replay it. Lines whose
/// annotations fired are recorded in `consumed`.
#[allow(clippy::too_many_arguments)]
fn extract_functions(
    code: &[&Tok],
    file: usize,
    anns: &BTreeMap<u32, Clauses>,
    class_ids: &BTreeMap<String, usize>,
    consumed: &mut HashSet<u32>,
    unknown: &mut Vec<(u32, String)>,
    out: &mut Vec<FnBody>,
) {
    let resolve_list = |names: &[String], line: u32, unknown: &mut Vec<(u32, String)>| {
        let mut ids = Vec::new();
        for n in names {
            match class_ids.get(n) {
                Some(&id) => ids.push(id),
                None => unknown.push((
                    line,
                    format!("durability annotation names undeclared class `{n}`"),
                )),
            }
        }
        ids
    };
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(Kind::Ident(name)) = code.get(i + 1).map(|t| &t.kind) else {
            i += 1;
            continue;
        };
        let header_line = code[i].line;
        let requires = match anns.get(&header_line) {
            Some(c) if !c.requires.is_empty() => {
                consumed.insert(header_line);
                resolve_list(&c.requires, header_line, unknown)
            }
            _ => Vec::new(),
        };
        // Find the body's `{` — or a `;` first (trait signature).
        let mut j = i + 2;
        let open = loop {
            match code.get(j).map(|t| &t.kind) {
                None => break None,
                Some(Kind::Punct('{')) => break Some(j),
                Some(Kind::Punct(';')) => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let mut depth = 0i32;
        let mut k = open;
        let close = loop {
            match code.get(k).map(|t| &t.kind) {
                None => break code.len(),
                Some(Kind::Punct('{')) => depth += 1,
                Some(Kind::Punct('}')) => {
                    depth -= 1;
                    if depth == 0 {
                        break k;
                    }
                }
                _ => {}
            }
            k += 1;
        };
        let events = replay_body(&code[open + 1..close], anns, class_ids, consumed, unknown);
        out.push(FnBody {
            name: name.clone(),
            file,
            requires,
            events,
        });
        i = close + 1;
    }
}

/// Replay one body in token order: annotated call lines fire their
/// seal/mutate events (seals first), resolvable calls become call
/// events, and a literal `1 - …` flip arms the slot witness.
fn replay_body(
    code: &[&Tok],
    anns: &BTreeMap<u32, Clauses>,
    class_ids: &BTreeMap<String, usize>,
    consumed: &mut HashSet<u32>,
    unknown: &mut Vec<(u32, String)>,
) -> Vec<Event> {
    let mut events = Vec::new();
    let mut fired: HashSet<u32> = HashSet::new();
    let mut slot_witness = false;
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if matches!(&t.kind, Kind::Int { value: Some(1), .. })
            && code.get(i + 1).is_some_and(|n| n.is_punct('-'))
        {
            slot_witness = true;
        }
        if let Kind::Ident(id) = &t.kind {
            if code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                // Annotated line: the first call-shaped token fires it.
                if let Some(c) = anns.get(&t.line) {
                    if c.has_site() && !fired.contains(&t.line) {
                        fired.insert(t.line);
                        consumed.insert(t.line);
                        let seals = resolve_classes(&c.seals, t.line, class_ids, unknown);
                        let mutates = resolve_classes(&c.mutates, t.line, class_ids, unknown);
                        if !seals.is_empty() {
                            events.push(Event {
                                kind: EvKind::Seal(seals),
                                line: t.line,
                                slot_witness,
                            });
                        }
                        if !mutates.is_empty() {
                            events.push(Event {
                                kind: EvKind::Mutate(mutates),
                                line: t.line,
                                slot_witness,
                            });
                        }
                    }
                }
                if !KEYWORDS.contains(&id.as_str()) && id != "drop" && call_resolvable(code, i) {
                    events.push(Event {
                        kind: EvKind::Call(id.clone()),
                        line: t.line,
                        slot_witness,
                    });
                }
            }
        }
        i += 1;
    }
    events
}

fn resolve_classes(
    names: &[String],
    line: u32,
    class_ids: &BTreeMap<String, usize>,
    unknown: &mut Vec<(u32, String)>,
) -> Vec<usize> {
    let mut ids = Vec::new();
    for n in names {
        match class_ids.get(n) {
            Some(&id) => ids.push(id),
            None => unknown.push((
                line,
                format!("durability annotation names undeclared class `{n}`"),
            )),
        }
    }
    ids
}

// ---------------------------------------------------------------------
// The analysis proper
// ---------------------------------------------------------------------

/// Run the full L6 analysis over `crates`, cross-checking the class
/// table against `design` (the DESIGN.md text) when given.
pub fn analyze(crates: &[CrateInput], design: Option<&str>) -> Analysis {
    struct CrateBodies {
        ci: usize,
        bodies: Vec<FnBody>,
        allowed_per_file: Vec<HashSet<u32>>,
        paths: Vec<String>,
    }
    let mut analysis = Analysis::default();
    let mut class_ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut classes: Vec<DuraClassRow> = Vec::new();

    // Pass 1: declarations — the class table must be global before any
    // annotation can resolve.
    let mut lexed: Vec<Vec<Vec<Tok>>> = Vec::new();
    for krate in crates {
        let mut per_file = Vec::new();
        for file in &krate.files {
            let toks = lex(&file.src);
            let allowed = allowed_lines(&toks, AllowRule::Durability);
            let (decls, problems) = parse_decls(&toks);
            for (line, msg) in problems {
                analysis.sites.push(DuraSite {
                    location: format!("{}:{line}", file.path),
                    detail: msg,
                    annotated: allowed.contains(&line),
                    krate: krate.name.clone(),
                });
            }
            for d in &decls {
                match class_ids.get(&d.class) {
                    Some(&id) => {
                        if classes[id].requires != d.requires {
                            analysis.sites.push(DuraSite {
                                location: format!("{}:{}", file.path, d.line),
                                detail: format!(
                                    "durability class `{}` redeclared with requires = {} \
                                     (first declared at {} with requires = {})",
                                    d.class,
                                    fmt_req(&d.requires),
                                    classes[id].decl,
                                    fmt_req(&classes[id].requires),
                                ),
                                annotated: allowed.contains(&d.line),
                                krate: krate.name.clone(),
                            });
                        }
                    }
                    None => {
                        class_ids.insert(d.class.clone(), classes.len());
                        classes.push(DuraClassRow {
                            name: d.class.clone(),
                            requires: d.requires.clone(),
                            decl: format!("{}:{}", file.path, d.line),
                            krate: krate.name.clone(),
                        });
                    }
                }
            }
            per_file.push(toks);
        }
        lexed.push(per_file);
    }

    // A `requires = <class>` naming an undeclared class is drift.
    for c in &classes {
        if let Some(req) = &c.requires {
            if !class_ids.contains_key(req) {
                analysis.sites.push(DuraSite {
                    location: c.decl.clone(),
                    detail: format!(
                        "durability class `{}` requires undeclared class `{req}`",
                        c.name
                    ),
                    annotated: false,
                    krate: c.krate.clone(),
                });
            }
        }
    }

    // Doc cross-check (DESIGN.md §15), both directions.
    if let Some(md) = design {
        let (anchors, problems) = parse_doc_anchors(md);
        for (line, msg) in problems {
            analysis.sites.push(DuraSite {
                location: format!("DESIGN.md:{line}"),
                detail: msg,
                annotated: false,
                krate: String::new(),
            });
        }
        for c in &classes {
            match anchors.iter().find(|a| a.class == c.name) {
                None => analysis.sites.push(DuraSite {
                    location: c.decl.clone(),
                    detail: format!(
                        "durability class `{}` has no `<!-- durability-class: … -->` \
                         anchor in DESIGN.md §15 — document it or remove the declaration",
                        c.name
                    ),
                    annotated: false,
                    krate: c.krate.clone(),
                }),
                Some(a) if a.requires != c.requires => analysis.sites.push(DuraSite {
                    location: c.decl.clone(),
                    detail: format!(
                        "durability class `{}` drifted from DESIGN.md §15: code says \
                         requires = {}, doc (line {}) says requires = {}",
                        c.name,
                        fmt_req(&c.requires),
                        a.line,
                        fmt_req(&a.requires),
                    ),
                    annotated: false,
                    krate: c.krate.clone(),
                }),
                Some(_) => {}
            }
        }
        for a in &anchors {
            if !class_ids.contains_key(&a.class) {
                analysis.sites.push(DuraSite {
                    location: format!("DESIGN.md:{}", a.line),
                    detail: format!(
                        "DESIGN.md §15 documents durability class `{}` but no source \
                         file declares it",
                        a.class
                    ),
                    annotated: false,
                    krate: String::new(),
                });
            }
        }
    }

    // Pass 2: annotations, bodies, contract rows.
    let mut per_crate: Vec<CrateBodies> = Vec::new();
    for (ci, krate) in crates.iter().enumerate() {
        let mut bodies = Vec::new();
        let mut allowed_per_file = Vec::new();
        let mut paths = Vec::new();
        for (fi, file) in krate.files.iter().enumerate() {
            let toks = &lexed[ci][fi];
            let allowed = allowed_lines(toks, AllowRule::Durability);
            let (anns, problems) = parse_annotations(toks);
            for (line, msg) in problems {
                analysis.sites.push(DuraSite {
                    location: format!("{}:{line}", file.path),
                    detail: msg,
                    annotated: allowed.contains(&line),
                    krate: krate.name.clone(),
                });
            }
            let stripped = strip_test_code(toks.clone());
            let code: Vec<&Tok> = stripped
                .iter()
                .filter(|t| !matches!(t.kind, Kind::Comment(_)))
                .collect();
            let mut consumed = HashSet::new();
            let mut unknown = Vec::new();
            extract_functions(
                &code,
                fi,
                &anns,
                &class_ids,
                &mut consumed,
                &mut unknown,
                &mut bodies,
            );
            for (line, msg) in unknown {
                analysis.sites.push(DuraSite {
                    location: format!("{}:{line}", file.path),
                    detail: msg,
                    annotated: allowed.contains(&line),
                    krate: krate.name.clone(),
                });
            }
            for (line, c) in &anns {
                if consumed.contains(line) {
                    if c.has_site() {
                        analysis.contracts.push(ContractRow {
                            location: format!("{}:{line}", file.path),
                            seals: c.seals.clone(),
                            mutates: c.mutates.clone(),
                            krate: krate.name.clone(),
                        });
                    }
                    continue;
                }
                let what = if c.has_site() {
                    "durability annotation binds to no call site — move it onto \
                     (or directly above) the write/sync it describes"
                } else {
                    "durability requires(…) annotation does not annotate a function \
                     header — move it directly above the `fn` line"
                };
                analysis.sites.push(DuraSite {
                    location: format!("{}:{line}", file.path),
                    detail: what.to_string(),
                    annotated: allowed.contains(line),
                    krate: krate.name.clone(),
                });
            }
            allowed_per_file.push(allowed);
            paths.push(file.path.clone());
        }
        per_crate.push(CrateBodies {
            ci,
            bodies,
            allowed_per_file,
            paths,
        });
    }

    // Fixed point + findings, per crate.
    for cb in &per_crate {
        let krate = &crates[cb.ci];
        // Per-crate resolution: a call resolves iff exactly one fn of
        // that name exists in the crate (same rule as L5).
        let mut name_count: HashMap<&str, usize> = HashMap::new();
        for b in &cb.bodies {
            *name_count.entry(b.name.as_str()).or_insert(0) += 1;
        }
        let resolve: HashMap<&str, usize> = cb
            .bodies
            .iter()
            .enumerate()
            .filter(|(_, b)| name_count[b.name.as_str()] == 1)
            .map(|(i, b)| (b.name.as_str(), i))
            .collect();

        let n = cb.bodies.len();
        let mut kills: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut gens: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        // Linear replays to a fixed point; the iteration cap covers
        // call-graph cycles, where gens may not be monotone.
        for _round in 0..n + 2 {
            let mut changed = false;
            for (bi, b) in cb.bodies.iter().enumerate() {
                let mut sealed: BTreeSet<usize> = BTreeSet::new();
                let mut k = kills[bi].clone();
                for ev in &b.events {
                    match &ev.kind {
                        EvKind::Seal(cs) => sealed.extend(cs.iter().copied()),
                        EvKind::Mutate(cs) => {
                            for c in cs {
                                sealed.remove(c);
                                k.insert(*c);
                            }
                        }
                        EvKind::Call(name) => {
                            if let Some(&callee) = resolve.get(name.as_str()) {
                                k.extend(kills[callee].iter().copied());
                                sealed = &sealed - &kills[callee];
                                sealed.extend(gens[callee].iter().copied());
                            }
                        }
                    }
                }
                if k != kills[bi] {
                    kills[bi] = k;
                    changed = true;
                }
                if sealed != gens[bi] {
                    gens[bi] = sealed;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Final emission pass.
        for b in &cb.bodies {
            let path = &cb.paths[b.file];
            let allowed = &cb.allowed_per_file[b.file];
            let fn_req: BTreeSet<usize> = b.requires.iter().copied().collect();
            let mut sealed: BTreeSet<usize> = BTreeSet::new();
            let push = |line: u32, detail: String, analysis: &mut Analysis| {
                analysis.sites.push(DuraSite {
                    location: format!("{path}:{line}"),
                    detail,
                    annotated: allowed.contains(&line),
                    krate: krate.name.clone(),
                });
            };
            for ev in &b.events {
                match &ev.kind {
                    EvKind::Seal(cs) => sealed.extend(cs.iter().copied()),
                    EvKind::Mutate(cs) => {
                        for &c in cs {
                            if let Some(req) = &classes[c].requires {
                                if let Some(&rid) = class_ids.get(req) {
                                    if !sealed.contains(&rid) && !fn_req.contains(&rid) {
                                        push(
                                            ev.line,
                                            format!(
                                                "`{}` write reachable before its `{req}` seal \
                                                 in `{}` — sync `{req}` first, or declare \
                                                 `durability: requires({req})` on the fn \
                                                 (DESIGN.md §15)",
                                                classes[c].name, b.name
                                            ),
                                            &mut analysis,
                                        );
                                    }
                                }
                            }
                            if classes[c].name == SLOT_ALTERNATING_CLASS && !ev.slot_witness {
                                push(
                                    ev.line,
                                    format!(
                                        "`{}` publish in `{}` has no slot-alternation \
                                         witness (`1 - <live slot>`) before the write — \
                                         it may hit the live slot (DESIGN.md §15)",
                                        classes[c].name, b.name
                                    ),
                                    &mut analysis,
                                );
                            }
                            sealed.remove(&c);
                        }
                    }
                    EvKind::Call(name) => {
                        if let Some(&callee) = resolve.get(name.as_str()) {
                            for &r in &cb.bodies[callee].requires {
                                if !sealed.contains(&r) && !fn_req.contains(&r) {
                                    push(
                                        ev.line,
                                        format!(
                                            "call to `{name}` requires `{}` sealed at entry, \
                                             but no `{}` seal precedes it in `{}` \
                                             (DESIGN.md §15)",
                                            classes[r].name, classes[r].name, b.name
                                        ),
                                        &mut analysis,
                                    );
                                }
                            }
                            sealed = &sealed - &kills[callee];
                            sealed.extend(gens[callee].iter().copied());
                        }
                    }
                }
            }
        }
    }

    analysis.classes = classes;
    analysis.classes.sort_by(|a, b| a.name.cmp(&b.name));
    analysis.contracts.sort_by(|a, b| {
        let key = |loc: &str| -> (String, u32) {
            match loc.rsplit_once(':') {
                Some((p, l)) => (p.to_string(), l.parse().unwrap_or(0)),
                None => (loc.to_string(), 0),
            }
        };
        key(&a.location).cmp(&key(&b.location))
    });
    analysis
}

fn fmt_req(r: &Option<String>) -> String {
    r.clone().unwrap_or_else(|| "none".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockdep::SourceFile;

    fn one_crate(files: Vec<(&str, &str)>) -> Vec<CrateInput> {
        vec![CrateInput {
            name: "fixture".to_string(),
            files: files
                .into_iter()
                .map(|(path, src)| SourceFile {
                    path: path.to_string(),
                    src: src.to_string(),
                })
                .collect(),
        }]
    }

    const DECLS: &str = "// durability-class: undo-image requires = none\n\
                         // durability-class: committed-page requires = undo-image\n";

    #[test]
    fn decl_comment_parses_and_registers() {
        let crates = one_crate(vec![("a.rs", DECLS)]);
        let a = analyze(&crates, None);
        assert_eq!(a.classes.len(), 2);
        assert_eq!(a.classes[0].name, "committed-page");
        assert_eq!(a.classes[0].requires.as_deref(), Some("undo-image"));
        assert_eq!(a.classes[1].requires, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn malformed_decl_is_a_finding() {
        let crates = one_crate(vec![(
            "a.rs",
            "// durability-class: undo-image needs = x\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(a.sites[0].detail.contains("malformed durability-class"));
    }

    #[test]
    fn conflicting_redeclaration_is_a_finding() {
        let crates = one_crate(vec![
            ("a.rs", "// durability-class: undo-image requires = none\n"),
            (
                "b.rs",
                "// durability-class: undo-image requires = undo-image\n",
            ),
        ]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("redeclared"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn requires_of_undeclared_class_is_a_finding() {
        let crates = one_crate(vec![(
            "a.rs",
            "// durability-class: commit-frame requires = shadow-data\n",
        )]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0]
                .detail
                .contains("requires undeclared class `shadow-data`"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn sealed_write_in_order_is_clean_and_exports_contracts() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn replace(&mut self) {{\n\
                     // durability: mutates(undo-image)\n\
                     self.wal.append(e);\n\
                     // durability: seals(undo-image)\n\
                     self.wal.sync();\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
        assert_eq!(a.contracts.len(), 3);
        assert_eq!(a.seal_sites_in("fixture").len(), 1);
        assert_eq!(a.contracts[0].mutates, vec!["undo-image".to_string()]);
    }

    #[test]
    fn unsealed_write_fires() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn replace(&mut self) {{\n\
                     // durability: mutates(undo-image)\n\
                     self.wal.append(e);\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0]
                .detail
                .contains("`committed-page` write reachable before its `undo-image` seal"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn mutating_the_guard_reopens_the_window() {
        // seal, dirty the guard again, then overwrite: must fire.
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn replace(&mut self) {{\n\
                     // durability: seals(undo-image)\n\
                     self.wal.sync();\n\
                     // durability: mutates(undo-image)\n\
                     self.wal.append(e);\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
    }

    #[test]
    fn interprocedural_seal_satisfies_requirement() {
        // The seal happens in a resolved callee; the write after the
        // call is safe (gens propagation).
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn outer(&mut self) {{\n\
                     self.force_undo();\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
                 fn force_undo(&mut self) {{\n\
                     // durability: seals(undo-image)\n\
                     self.wal.sync();\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn call_requires_violation_fires() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 // durability: requires(undo-image)\n\
                 fn overwrite(&mut self) {{\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
                 fn outer(&mut self) {{\n\
                     self.overwrite();\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0]
                .detail
                .contains("call to `overwrite` requires `undo-image` sealed at entry"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn satisfied_call_requires_is_clean() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 // durability: requires(undo-image)\n\
                 fn overwrite(&mut self) {{\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
                 fn outer(&mut self) {{\n\
                     // durability: seals(undo-image)\n\
                     self.wal.sync();\n\
                     self.overwrite();\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn callee_kills_invalidate_the_seal() {
        // A resolved call that dirties the guard class re-opens the
        // window for a later overwrite.
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn outer(&mut self) {{\n\
                     // durability: seals(undo-image)\n\
                     self.wal.sync();\n\
                     self.log_more();\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf);\n\
                 }}\n\
                 fn log_more(&mut self) {{\n\
                     // durability: mutates(undo-image)\n\
                     self.wal.append(e);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("before its `undo-image` seal"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn superblock_without_slot_flip_fires() {
        let decls = "// durability-class: superblock requires = none\n";
        let src = format!(
            "{decls}\
             impl S {{\n\
                 fn publish(&mut self) {{\n\
                     // durability: mutates(superblock)\n\
                     self.vol.write_pages(self.base, &sb);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("may hit the live slot"),
            "{}",
            a.sites[0].detail
        );

        let good = format!(
            "{decls}\
             impl S {{\n\
                 fn publish(&mut self) {{\n\
                     let slot = 1 - self.sb_slot;\n\
                     // durability: mutates(superblock)\n\
                     self.vol.write_pages(self.base + u64::from(slot), &sb);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &good)]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn allow_annotation_suppresses_but_site_remains() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn replace(&mut self) {{\n\
                     // durability: mutates(committed-page)\n\
                     self.vol.write_pages(0, &buf); \
                     // lint: allow(durability, reason = \"format-time: nothing is live\")\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(a.sites[0].annotated);
        assert_eq!(a.unannotated_in("fixture"), 0);
    }

    #[test]
    fn dangling_site_annotation_fires() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn f(&mut self) {{\n\
                     // durability: seals(undo-image)\n\
                     let x = 3;\n\
                     self.use_x(x);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("binds to no call site"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn dangling_requires_annotation_fires() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn f(&mut self) {{\n\
                     // durability: requires(undo-image)\n\
                     let x = 3;\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("does not annotate a function"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn malformed_annotation_is_a_finding() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn f(&mut self) {{\n\
                     // durability: seals undo-image\n\
                     self.wal.sync();\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0]
                .detail
                .contains("malformed durability annotation"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn unknown_class_in_annotation_is_a_finding() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 fn f(&mut self) {{\n\
                     // durability: seals(commit-frame)\n\
                     self.wal.sync();\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0]
                .detail
                .contains("undeclared class `commit-frame`"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn combined_seal_and_mutate_applies_seals_first() {
        // `prepare_commit`-shaped line: the data barrier and the frame
        // append collapsed onto one call — seals apply before mutates.
        let decls = "// durability-class: shadow-data requires = none\n\
                     // durability-class: commit-frame requires = shadow-data\n";
        let src = format!(
            "{decls}\
             impl S {{\n\
                 fn commit(&mut self) {{\n\
                     // durability: seals(shadow-data) mutates(commit-frame)\n\
                     st.prepare_commit(t, true);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert!(a.sites.is_empty(), "{:?}", a.sites);
        assert_eq!(a.contracts.len(), 1);
        assert_eq!(a.contracts[0].seals, vec!["shadow-data".to_string()]);
        assert_eq!(a.contracts[0].mutates, vec!["commit-frame".to_string()]);
    }

    #[test]
    fn self_qualified_call_propagates() {
        let src = format!(
            "{DECLS}\
             impl S {{\n\
                 // durability: requires(undo-image)\n\
                 fn overwrite(s: &mut S) {{\n\
                     // durability: mutates(committed-page)\n\
                     s.vol.write_pages(0, &buf);\n\
                 }}\n\
                 fn outer(&mut self) {{\n\
                     Self::overwrite(self);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("call to `overwrite`"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn doc_drift_fires_both_directions() {
        let crates = one_crate(vec![(
            "a.rs",
            "// durability-class: undo-image requires = none\n",
        )]);
        let md = "<!-- durability-class: ghost-class requires = none -->\n";
        let a = analyze(&crates, Some(md));
        assert_eq!(a.sites.len(), 2, "{:?}", a.sites);
        assert!(a
            .sites
            .iter()
            .any(|s| s.detail.contains("no `<!-- durability-class:") && s.location == "a.rs:1"));
        assert!(a
            .sites
            .iter()
            .any(|s| s.detail.contains("no source file declares") && s.location == "DESIGN.md:1"));
    }

    #[test]
    fn doc_requires_mismatch_is_drift() {
        let crates = one_crate(vec![("a.rs", DECLS)]);
        let md = "<!-- durability-class: undo-image requires = none -->\n\
                  <!-- durability-class: committed-page requires = none -->\n";
        let a = analyze(&crates, Some(md));
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(
            a.sites[0].detail.contains("drifted"),
            "{}",
            a.sites[0].detail
        );
    }

    #[test]
    fn matching_doc_is_clean() {
        let crates = one_crate(vec![("a.rs", DECLS)]);
        let md = "<!-- durability-class: undo-image requires = none -->\n\
                  <!-- durability-class: committed-page requires = undo-image -->\n";
        let a = analyze(&crates, Some(md));
        assert!(a.sites.is_empty(), "{:?}", a.sites);
    }

    #[test]
    fn test_code_is_stripped() {
        let src = format!(
            "{DECLS}\
             #[cfg(test)]\n\
             mod tests {{\n\
                 fn f(s: &mut S) {{\n\
                     // durability: mutates(committed-page)\n\
                     s.vol.write_pages(0, &buf);\n\
                 }}\n\
             }}\n"
        );
        let crates = one_crate(vec![("a.rs", &src)]);
        let a = analyze(&crates, None);
        // The annotation inside test code binds to nothing after the
        // strip — it must surface as dangling, not as an ordering bug.
        assert_eq!(a.sites.len(), 1, "{:?}", a.sites);
        assert!(a.sites[0].detail.contains("binds to no call site"));
    }
}
