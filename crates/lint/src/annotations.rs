//! Inline suppression annotations.
//!
//! The only way to silence a lint finding at a specific site is an
//! inline comment naming the rule and giving a non-empty reason:
//!
//! ```text
//! // lint: allow(panic, reason = "slice length checked above")
//! // lint: allow(latch, reason = "guard dropped before the write")
//! ```
//!
//! The annotation covers the line it sits on and the line directly
//! below it, so it works both trailing a statement and on its own line
//! above one. Annotations without a reason are deliberately inert —
//! the reason is the reviewable artifact.

use std::collections::HashSet;

use crate::lexer::{Kind, Tok};

/// Which rule an annotation can suppress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowRule {
    /// `allow(panic, …)` — panic-path sites.
    Panic,
    /// `allow(latch, …)` — latch-discipline sites.
    Latch,
    /// `allow(lockorder, …)` — interprocedural lock-order sites.
    LockOrder,
    /// `allow(durability, …)` — durability-ordering sites.
    Durability,
}

impl AllowRule {
    fn keyword(self) -> &'static str {
        match self {
            AllowRule::Panic => "panic",
            AllowRule::Latch => "latch",
            AllowRule::LockOrder => "lockorder",
            AllowRule::Durability => "durability",
        }
    }
}

/// Lines on which findings of `rule` are suppressed. A *trailing*
/// annotation (code before it on the same line) covers exactly its own
/// line; a *standalone* annotation covers the line below it.
pub fn allowed_lines(toks: &[Tok], rule: AllowRule) -> HashSet<u32> {
    let code_lines: HashSet<u32> = toks
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment(_)))
        .map(|t| t.line)
        .collect();
    let mut out = HashSet::new();
    for t in toks {
        if let Kind::Comment(text) = &t.kind {
            if comment_allows(text, rule) {
                if code_lines.contains(&t.line) {
                    out.insert(t.line);
                } else {
                    out.insert(t.line + 1);
                }
            }
        }
    }
    out
}

/// Does a single comment body carry a well-formed
/// `lint: allow(<rule>, reason = "…")` with a non-empty reason?
fn comment_allows(text: &str, rule: AllowRule) -> bool {
    // Strip comment markers and leading doc-comment slashes/stars.
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim()
        .trim_end_matches("*/")
        .trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return false;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return false;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return false;
    };
    let Some(rest) = rest.trim_start().strip_prefix(rule.keyword()) else {
        return false;
    };
    let Some(rest) = rest.trim_start().strip_prefix(',') else {
        return false;
    };
    let Some(rest) = rest.trim_start().strip_prefix("reason") else {
        return false;
    };
    let Some(rest) = rest.trim_start().strip_prefix('=') else {
        return false;
    };
    // The reason must be a non-empty quoted string (it may itself
    // contain parentheses), followed by the closing paren.
    let Some(rest) = rest.trim_start().strip_prefix('"') else {
        return false;
    };
    let Some(close) = rest.find('"') else {
        return false;
    };
    close > 0 && rest[close + 1..].trim_start().starts_with(')')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn reason_may_contain_parentheses() {
        let toks =
            lex("// lint: allow(panic, reason = \"b < total_bytes(), callers validate\")\nf();\n");
        assert!(allowed_lines(&toks, AllowRule::Panic).contains(&2));
    }

    #[test]
    fn standalone_annotation_covers_line_below() {
        let toks = lex("// lint: allow(panic, reason = \"checked\")\nlet x = 1;\n");
        let lines = allowed_lines(&toks, AllowRule::Panic);
        assert!(lines.contains(&2) && !lines.contains(&1));
        assert!(allowed_lines(&toks, AllowRule::Latch).is_empty());
    }

    #[test]
    fn trailing_annotation_covers_only_its_line() {
        let toks = lex("a(); // lint: allow(panic, reason = \"checked\")\nb();\n");
        let lines = allowed_lines(&toks, AllowRule::Panic);
        assert!(lines.contains(&1) && !lines.contains(&2));
    }

    #[test]
    fn malformed_annotations_are_inert() {
        for bad in [
            "// lint: allow(panic)",
            "// lint: allow(panic, reason = \"\")",
            "// lint: allow(panic, reason = )",
            "// allow(panic, reason = \"x\")",
            "// lint: allow(latch, reason = \"x\")",
        ] {
            let toks = lex(bad);
            assert!(
                allowed_lines(&toks, AllowRule::Panic).is_empty(),
                "{bad:?} should not suppress panic findings"
            );
        }
    }

    #[test]
    fn latch_annotation_is_separate() {
        let toks = lex("// lint: allow(latch, reason = \"dropped before I/O\")\n");
        assert!(!allowed_lines(&toks, AllowRule::Latch).is_empty());
        assert!(allowed_lines(&toks, AllowRule::Panic).is_empty());
    }

    #[test]
    fn lockorder_annotation_is_separate() {
        let toks = lex("// lint: allow(lockorder, reason = \"single-threaded bootstrap\")\n");
        assert!(!allowed_lines(&toks, AllowRule::LockOrder).is_empty());
        assert!(allowed_lines(&toks, AllowRule::Latch).is_empty());
        assert!(allowed_lines(&toks, AllowRule::Panic).is_empty());
    }

    #[test]
    fn durability_annotation_is_separate() {
        let toks = lex("// lint: allow(durability, reason = \"virgin region, nothing live\")\n");
        assert!(!allowed_lines(&toks, AllowRule::Durability).is_empty());
        assert!(allowed_lines(&toks, AllowRule::LockOrder).is_empty());
        assert!(allowed_lines(&toks, AllowRule::Panic).is_empty());
    }
}
