//! Token-level removal of test-only code.
//!
//! The panic rules apply to *production* code; tests panic on purpose
//! (that is what `assert!` is). Working on the token stream — there is
//! no AST — we drop every item that is directly preceded by a
//! `#[cfg(test)]`, `#[test]`, or `#[should_panic]`-style attribute:
//! the attribute tokens themselves, any further stacked attributes,
//! and the item through its balanced `{ … }` body (or trailing `;`).

use crate::lexer::{Kind, Tok};

/// Remove tokens belonging to test-gated items. Comments are passed
/// through untouched (annotation scanning happens before this filter).
pub fn strip_test_code(toks: Vec<Tok>) -> Vec<Tok> {
    let idx: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, Kind::Comment(_)))
        .map(|(i, _)| i)
        .collect();
    let mut drop = vec![false; toks.len()];
    let mut k = 0;
    while k < idx.len() {
        if is_attr_open(&toks, &idx, k) {
            let Some(attr_end) = attr_close(&toks, &idx, k) else {
                break;
            };
            if attr_is_test(&toks, &idx, k + 2, attr_end) {
                // Drop this attribute, any stacked attributes after it,
                // and the item itself.
                let mut end = attr_end + 1;
                while is_attr_open(&toks, &idx, end) {
                    match attr_close(&toks, &idx, end) {
                        Some(e) => end = e + 1,
                        None => break,
                    }
                }
                let end = item_end(&toks, &idx, end);
                for &ti in &idx[k..end.min(idx.len())] {
                    drop[ti] = true;
                }
                k = end;
                continue;
            }
            k = attr_end + 1;
            continue;
        }
        k += 1;
    }
    toks.into_iter()
        .enumerate()
        .filter(|(i, _)| !drop[*i])
        .map(|(_, t)| t)
        .collect()
}

/// Is code-token `k` the `#` of a `#[` attribute?
fn is_attr_open(toks: &[Tok], idx: &[usize], k: usize) -> bool {
    let (Some(&a), Some(&b)) = (idx.get(k), idx.get(k + 1)) else {
        return false;
    };
    toks[a].is_punct('#') && toks[b].is_punct('[')
}

/// Code-token index of the `]` closing the attribute whose `#` is at
/// code-token `k`.
fn attr_close(toks: &[Tok], idx: &[usize], k: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, &ti) in idx.iter().enumerate().skip(k + 1) {
        match toks[ti].kind {
            Kind::Punct('[') => depth += 1,
            Kind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(off);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does the attribute body (code tokens `start..end`) gate test code?
/// Matches `test`, `cfg(test)`, `cfg(any(test, …))`, `should_panic`,
/// and `tokio::test`-style paths ending in `test`.
fn attr_is_test(toks: &[Tok], idx: &[usize], start: usize, end: usize) -> bool {
    idx[start..end].iter().any(
        |&ti| matches!(&toks[ti].kind, Kind::Ident(id) if id == "test" || id == "should_panic"),
    )
}

/// Code-token index one past the end of the item starting at code-token
/// `k`: through the matching `}` of its first `{`, or through the first
/// `;` at depth 0, whichever comes first.
fn item_end(toks: &[Tok], idx: &[usize], k: usize) -> usize {
    let mut depth = 0i32;
    for (off, &ti) in idx.iter().enumerate().skip(k) {
        match toks[ti].kind {
            Kind::Punct('{') => depth += 1,
            Kind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return off + 1;
                }
            }
            Kind::Punct(';') if depth == 0 => return off + 1,
            _ => {}
        }
    }
    idx.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn idents(toks: &[Tok]) -> Vec<String> {
        toks.iter()
            .filter_map(|t| match &t.kind {
                Kind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cfg_test_module_is_dropped() {
        let src = "fn keep() {}\n#[cfg(test)]\nmod tests { fn gone() {} }\nfn also_keep() {}\n";
        let out = strip_test_code(lex(src));
        let ids = idents(&out);
        assert!(ids.contains(&"keep".to_string()));
        assert!(ids.contains(&"also_keep".to_string()));
        assert!(!ids.contains(&"gone".to_string()));
    }

    #[test]
    fn test_fn_with_stacked_attrs_is_dropped() {
        let src = "#[test]\n#[should_panic]\nfn t() { inner() }\nfn keep() {}\n";
        let out = strip_test_code(lex(src));
        let ids = idents(&out);
        assert!(!ids.contains(&"t".to_string()));
        assert!(!ids.contains(&"inner".to_string()));
        assert!(ids.contains(&"keep".to_string()));
    }

    #[test]
    fn non_test_attrs_are_kept() {
        let src = "#[derive(Debug)]\nstruct Keep { field: u8 }\n#[inline]\nfn f() {}\n";
        let out = strip_test_code(lex(src));
        let ids = idents(&out);
        assert!(ids.contains(&"Keep".to_string()));
        assert!(ids.contains(&"f".to_string()));
    }

    #[test]
    fn nested_braces_in_test_body_are_handled() {
        let src = "#[cfg(test)]\nmod t { fn a() { if x { y() } } fn b() {} }\nfn keep() {}\n";
        let out = strip_test_code(lex(src));
        let ids = idents(&out);
        assert_eq!(ids, vec!["fn".to_string(), "keep".to_string()]);
    }
}
