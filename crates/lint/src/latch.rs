//! Rule L3 — §4.5 short-duration-latch discipline.
//!
//! The paper requires the superdirectory latch (and every other
//! in-memory `parking_lot` lock) to be *short duration*: never held
//! across volume I/O, and never nested with a second latch (the lock
//! order is "at most one latch at a time, and no `Volume` call under
//! it"). This rule walks the token stream of each production source
//! file and tracks lock guards:
//!
//! * `let g = …​.lock();` — a named guard, live until its enclosing
//!   block closes or an explicit `drop(g)`;
//! * `g = …​.lock();` where `g` was previously bound to a guard —
//!   release-then-reacquire (the group-commit leader drops the latch,
//!   flushes, and reacquires in a loop): the old guard is dead by
//!   assignment time, so this is *not* a nested latch, and the revived
//!   guard lives to the end of the block that bound `g`;
//! * `…​.lock().method(…)` — a temporary guard, live to the end of the
//!   statement.
//!
//! While any guard is live, a call to `write_pages` / `read_pages` /
//! `sync` (the `Volume` I/O surface) or a further `.lock()` is a
//! finding. Suppression: `// lint: allow(latch, reason = "…")`.
//!
//! `crates/pager` itself is exempt by configuration — its mutex *is*
//! the I/O lock at the bottom of the order.

use crate::annotations::{allowed_lines, AllowRule};
use crate::lexer::{lex, Kind, Tok};
use crate::test_filter::strip_test_code;

/// One latch-discipline violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatchSite {
    /// 1-based line of the violating call.
    pub line: u32,
    /// What happened, naming the guard where known.
    pub detail: String,
    /// Suppressed by `// lint: allow(latch, …)`?
    pub annotated: bool,
}

/// Methods that constitute volume I/O for the purpose of this rule.
const IO_METHODS: [&str; 3] = ["write_pages", "read_pages", "sync"];

#[derive(Debug)]
struct Guard {
    name: String,
    /// Brace depth at the `let`; the guard dies when depth drops below.
    depth: i32,
    line: u32,
}

/// Scan one file's source text for latch-discipline violations.
pub fn scan_source(src: &str) -> Vec<LatchSite> {
    let toks = lex(src);
    let allowed = allowed_lines(&toks, AllowRule::Latch);
    let toks = strip_test_code(toks);
    let code: Vec<&Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, Kind::Comment(_)))
        .collect();

    let mut sites = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    // Every name ever bound to a guard by `let`, with its binding
    // depth, kept until that scope closes (even across `drop`) so a
    // later `name = ….lock();` is recognised as a reacquire.
    let mut known: Vec<(String, i32)> = Vec::new();
    // Line of a temporary (unbound) guard live until the next `;`.
    let mut temp_guard: Option<u32> = None;
    // Inside a `let <name> = …` initializer: candidate binding name.
    let mut let_binding: Option<String> = None;
    let mut depth = 0i32;

    let mut push = |line: u32, detail: String| {
        sites.push(LatchSite {
            line,
            detail,
            annotated: allowed.contains(&line),
        });
    };

    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        match &t.kind {
            // Braces end statements too: a tail expression like
            // `self.inner.lock().stats` has no `;`.
            Kind::Punct('{') => {
                depth += 1;
                temp_guard = None;
                let_binding = None;
            }
            Kind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                known.retain(|(_, d)| *d <= depth);
                temp_guard = None;
                let_binding = None;
            }
            Kind::Punct(';') => {
                temp_guard = None;
                let_binding = None;
            }
            Kind::Ident(id) if id == "let" => {
                // `let [mut|ref]* name = …` — remember the binding name
                // so a `.lock()` initializer becomes a named guard.
                let mut j = i + 1;
                while code
                    .get(j)
                    .is_some_and(|t| t.is_ident("mut") || t.is_ident("ref"))
                {
                    j += 1;
                }
                if let Some(Kind::Ident(name)) = code.get(j).map(|t| &t.kind) {
                    let_binding = Some(name.clone());
                }
            }
            // `drop(name)` releases a named guard.
            Kind::Ident(id) if id == "drop" && code.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                if let Some(Kind::Ident(name)) = code.get(i + 2).map(|t| &t.kind) {
                    if code.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                        guards.retain(|g| &g.name != name);
                    }
                }
            }
            // `.lock()` — acquisition.
            Kind::Ident(id)
                if id == "lock"
                    && i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                let closes = code.get(i + 2).is_some_and(|t| t.is_punct(')'))
                    && code.get(i + 3).is_some_and(|t| t.is_punct(';'));
                // `name = ….lock();` where `name` was bound to a guard
                // earlier in this scope: release-then-reacquire, not a
                // nested latch — the old guard is dead by assignment
                // time. The revived guard keeps the original binding
                // depth (it outlives the block doing the reassignment).
                let reacquire = if closes && let_binding.is_none() {
                    let mut j = i;
                    while j > 0 && !matches!(code[j - 1].kind, Kind::Punct(';' | '{' | '}')) {
                        j -= 1;
                    }
                    match (
                        code.get(j).map(|t| &t.kind),
                        code.get(j + 1),
                        code.get(j + 2),
                    ) {
                        (Some(Kind::Ident(name)), Some(eq), Some(after))
                            if eq.is_punct('=') && !after.is_punct('=') =>
                        {
                            known.iter().rev().find(|(n, _)| n == name).cloned()
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some((name, _)) = &reacquire {
                    guards.retain(|g| &g.name != name);
                }
                if let Some(g) = guards.last() {
                    push(
                        t.line,
                        format!(
                            "second latch acquired while guard `{}` (line {}) is held \
                             — §4.5 allows at most one short-duration latch",
                            g.name, g.line
                        ),
                    );
                } else if temp_guard.is_some() {
                    push(
                        t.line,
                        "second latch acquired in a statement already holding a \
                         temporary lock guard"
                            .to_string(),
                    );
                }
                if let Some((name, bind_depth)) = reacquire {
                    guards.push(Guard {
                        name,
                        depth: bind_depth,
                        line: t.line,
                    });
                } else if closes && let_binding.is_some() {
                    // Named guard only when the statement is exactly
                    // `let g = ….lock();` — i.e. the `()` is followed
                    // directly by `;`.
                    let name = let_binding.clone().unwrap_or_default();
                    known.push((name.clone(), depth));
                    guards.push(Guard {
                        name,
                        depth,
                        line: t.line,
                    });
                } else {
                    temp_guard = Some(t.line);
                }
            }
            // Volume I/O.
            Kind::Ident(id)
                if IO_METHODS.contains(&id.as_str())
                    && i > 0
                    && code[i - 1].is_punct('.')
                    && code.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                if let Some(g) = guards.last() {
                    push(
                        t.line,
                        format!(
                            "volume I/O `{id}` while latch guard `{}` (line {}) is held \
                             — drop the guard before touching the volume (§4.5)",
                            g.name, g.line
                        ),
                    );
                } else if temp_guard.is_some() {
                    push(
                        t.line,
                        format!("volume I/O `{id}` in a statement holding a temporary lock guard"),
                    );
                }
            }
            _ => {}
        }
        i += 1;
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_across_io_fires() {
        let src = r#"
fn bad(&self) {
    let g = self.latch.lock();
    self.vol.write_pages(0, &[]);
    drop(g);
}
"#;
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].detail.contains("write_pages"));
        assert!(sites[0].detail.contains("`g`"));
    }

    /// Ratchet at zero for the concurrency front-end: the module most
    /// exposed to latch-across-I/O mistakes (the group-commit leader
    /// syncs the volume between latched phases) must stay free of
    /// unannotated findings. `crates/core/src` is in `LATCH_DIRS`, so
    /// the workspace run covers it too; this pins the file by name.
    #[test]
    fn concurrent_module_has_no_latch_findings() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap()
            .join("crates/core/src/concurrent.rs");
        let src = std::fs::read_to_string(&path).unwrap();
        let findings: Vec<_> = scan_source(&src)
            .into_iter()
            .filter(|s| !s.annotated)
            .collect();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_dropped_before_io_is_clean() {
        let src = r#"
fn good(&self) {
    let g = self.latch.lock();
    let n = g.len();
    drop(g);
    self.vol.write_pages(n, &[]);
}
"#;
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn scoped_guard_before_io_is_clean() {
        let src = r#"
fn good(&self) {
    let n = {
        let g = self.latch.lock();
        g.len()
    };
    self.vol.sync();
    let _ = n;
}
"#;
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn second_latch_fires() {
        let src = r#"
fn bad(&self) {
    let a = self.first.lock();
    let b = self.second.lock();
    drop(a);
    drop(b);
}
"#;
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].detail.contains("second latch"));
    }

    #[test]
    fn temporary_guard_is_released_at_statement_end() {
        let src = r#"
fn good(&self) {
    self.pending.lock().push(1);
    self.vol.sync();
}
"#;
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn temporary_guard_across_io_in_one_statement_fires() {
        let src = "fn bad(&self) { self.pending.lock().push(self.vol.sync()); }";
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].detail.contains("temporary"));
    }

    #[test]
    fn annotation_suppresses() {
        let src = r#"
fn tolerated(&self) {
    let g = self.latch.lock();
    // lint: allow(latch, reason = "startup path, single-threaded")
    self.vol.sync();
    drop(g);
}
"#;
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].annotated);
    }

    #[test]
    fn tail_expression_guard_does_not_leak_into_next_fn() {
        let src = r#"
fn len(&self) -> usize {
    self.inner.lock().len()
}
fn other(&self) {
    self.inner.lock().push(1);
    self.vol.sync();
}
"#;
        assert!(scan_source(src).is_empty());
    }

    /// The group-commit leader pattern (`concurrent.rs`): drop the
    /// latch, flush, reacquire by assignment inside the loop. The
    /// reassignment must read as release-then-reacquire, not as a
    /// second latch.
    #[test]
    fn loop_reacquire_is_not_a_second_latch() {
        let src = r#"
fn leader(&self) {
    let mut g = self.group.lock();
    loop {
        if g.ready {
            drop(g);
            self.flush();
            g = self.group.lock();
            g.done = true;
        } else {
            self.cv.wait(&mut g);
        }
    }
}
"#;
        assert!(scan_source(src).is_empty(), "{:?}", scan_source(src));
    }

    /// After the reacquire the guard is held again: volume I/O behind
    /// it must still fire, even when the reassignment happened in an
    /// inner block (the guard's lifetime is the original binding's).
    #[test]
    fn reacquired_guard_across_io_fires() {
        let src = r#"
fn bad(&self) {
    let mut g = self.group.lock();
    if g.ready {
        drop(g);
        g = self.group.lock();
    }
    self.vol.sync();
}
"#;
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert!(sites[0].detail.contains("sync"));
        assert!(sites[0].detail.contains("`g`"));
    }

    /// Reacquiring one guard while a *different* guard is held is
    /// still a nested latch.
    #[test]
    fn reacquire_under_another_guard_still_fires() {
        let src = r#"
fn bad(&self) {
    let mut g = self.group.lock();
    drop(g);
    let h = self.other.lock();
    g = self.group.lock();
    drop(g);
    drop(h);
}
"#;
        let sites = scan_source(src);
        assert_eq!(sites.len(), 1, "{sites:?}");
        assert!(sites[0].detail.contains("second latch"));
        assert!(sites[0].detail.contains("`h`"));
    }

    /// Assignment to a name never bound to a guard stays a temporary
    /// guard (we know nothing about its lifetime).
    #[test]
    fn assignment_to_unknown_name_is_temporary() {
        let src = r#"
fn odd(&self) {
    self.slot = self.cell.lock();
    self.vol.sync();
}
"#;
        assert!(scan_source(src).is_empty());
    }

    #[test]
    fn condvar_wait_does_not_fire() {
        let src = r#"
fn wait(&self) {
    let mut g = self.inner.lock();
    while g.busy {
        self.cond.wait(&mut g);
    }
    drop(g);
}
"#;
        assert!(scan_source(src).is_empty());
    }
}
