//! # eos — facade crate for the EOS large object storage system
//!
//! Reproduction of A. Biliris, *"An Efficient Database Storage Structure
//! for Large Dynamic Objects"*, ICDE 1992. Re-exports the workspace
//! crates under one roof:
//!
//! * [`pager`] — paged volumes and the simulated disk cost model.
//! * [`buddy`] — the binary buddy disk space manager (paper §3).
//! * [`core`] — the large object manager (paper §4).
//! * [`obs`] — metrics, per-operation I/O attribution, and tracing.
//! * [`baselines`] — the stores EOS is compared against (Exodus,
//!   Starburst, WiSS, System R).
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment inventory.

#![forbid(unsafe_code)]

pub mod catalog;

pub use eos_baselines as baselines;
pub use eos_buddy as buddy;
pub use eos_core as core;
pub use eos_obs as obs;
pub use eos_pager as pager;
