//! A named-object catalog, dogfooded on the store itself.
//!
//! The paper leaves root placement to the client ("the client may
//! choose to place the root on a page along with roots of other large
//! objects", §4). [`Catalog`] is that client: a name → descriptor map
//! which is *itself* persisted as a large object, whose (tiny) root
//! descriptor lives in the store's fixed boot record. The result is a
//! fully self-describing volume:
//!
//! ```text
//! boot page ── catalog descriptor ── catalog object ── {name: descriptor}
//! ```
//!
//! ```
//! use eos::catalog::Catalog;
//! use eos::core::ObjectStore;
//!
//! let mut store = ObjectStore::in_memory(1024, 4000);
//! let mut cat = Catalog::new();
//!
//! let photo = store.create_with(b"...pixels...", None).unwrap();
//! cat.put("photos/cat.jpg", &photo);
//! cat.save(&mut store).unwrap();
//!
//! // Later (or after reopening the volume):
//! let cat = Catalog::load(&store).unwrap();
//! let photo = cat.get("photos/cat.jpg").unwrap();
//! assert_eq!(store.read_all(&photo).unwrap(), b"...pixels...");
//! ```

use std::collections::BTreeMap;

use eos_core::{Error, LargeObject, ObjectStore, Result};

const CATALOG_MAGIC: u32 = 0x454F_5343; // format-anchor: CATALOG_MAGIC

/// A persistent name → object-descriptor map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    entries: BTreeMap<String, Vec<u8>>,
    /// The catalog object of the previous save, replaced on each save.
    previous: Option<Vec<u8>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) an object under `name`.
    pub fn put(&mut self, name: &str, obj: &LargeObject) {
        self.entries.insert(name.to_string(), obj.to_bytes());
    }

    /// Look up an object by name.
    pub fn get(&self, name: &str) -> Result<LargeObject> {
        let bytes = self.entries.get(name).ok_or_else(|| Error::CorruptObject {
            reason: format!("no catalog entry named {name:?}"),
        })?;
        LargeObject::from_bytes(bytes)
    }

    /// Remove a name (the object itself is not deleted).
    pub fn remove(&mut self, name: &str) -> bool {
        self.entries.remove(name).is_some()
    }

    /// All names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CATALOG_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, desc) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(desc.len() as u32).to_le_bytes());
            out.extend_from_slice(desc);
        }
        out
    }

    fn decode(data: &[u8]) -> Result<Catalog> {
        let corrupt = |reason: &str| Error::CorruptObject {
            reason: format!("catalog: {reason}"),
        };
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            if at + n > data.len() {
                return Err(corrupt("truncated"));
            }
            let s = &data[at..at + n];
            at += n;
            Ok(s)
        };
        if u32::from_le_bytes(take(4)?.try_into().unwrap()) != CATALOG_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let n = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let nl = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            let name =
                String::from_utf8(take(nl)?.to_vec()).map_err(|_| corrupt("name not UTF-8"))?;
            let dl = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            entries.insert(name, take(dl)?.to_vec());
        }
        Ok(Catalog {
            entries,
            previous: None,
        })
    }

    /// Decode a catalog from the raw bytes of a catalog object — used
    /// by crash recovery to salvage the name map when the boot record
    /// itself did not survive (the catalog *object* is committed via
    /// the WAL; only the boot page pointing at it is written raw).
    pub fn parse(data: &[u8]) -> Result<Catalog> {
        Self::decode(data)
    }

    /// Persist the catalog: write it as a fresh large object and stamp
    /// its descriptor into the boot record. The previous catalog object
    /// (if any) is deleted afterwards, so a crash between the two steps
    /// leaves at least one intact catalog reachable from the boot page.
    pub fn save(&mut self, store: &mut ObjectStore) -> Result<()> {
        let bytes = self.encode();
        let obj = store.create_with(&bytes, Some(bytes.len() as u64))?;
        store.write_boot_record(&obj.to_bytes())?;
        if let Some(prev) = self.previous.take() {
            let mut old = LargeObject::from_bytes(&prev)?;
            store.delete_object(&mut old)?;
        }
        self.previous = Some(obj.to_bytes());
        Ok(())
    }

    /// Load the catalog a previous [`Catalog::save`] stamped into the
    /// boot record. An empty boot record yields an empty catalog.
    pub fn load(store: &ObjectStore) -> Result<Catalog> {
        let boot = store.read_boot_record()?;
        if boot.is_empty() {
            return Ok(Catalog::new());
        }
        let obj = LargeObject::from_bytes(&boot)?;
        let bytes = store.read_all(&obj)?;
        let mut cat = Catalog::decode(&bytes)?;
        cat.previous = Some(boot);
        Ok(cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_the_boot_record() {
        let mut store = ObjectStore::in_memory(1024, 4000);
        let a = store.create_with(b"object a", None).unwrap();
        let b = store.create_with(&vec![7u8; 50_000], None).unwrap();
        let mut cat = Catalog::new();
        cat.put("a", &a);
        cat.put("big/b", &b);
        cat.save(&mut store).unwrap();

        let loaded = Catalog::load(&store).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.names().collect::<Vec<_>>(), vec!["a", "big/b"]);
        let b2 = loaded.get("big/b").unwrap();
        assert_eq!(store.read_all(&b2).unwrap(), vec![7u8; 50_000]);
        assert!(loaded.get("missing").is_err());
    }

    #[test]
    fn resave_replaces_without_leaking() {
        let mut store = ObjectStore::in_memory(1024, 4000);
        let mut cat = Catalog::new();
        let a = store.create_with(b"first", None).unwrap();
        cat.put("a", &a);
        cat.save(&mut store).unwrap();
        let free_after_first = store.buddy().total_free_pages();
        for i in 0..10 {
            let o = store
                .create_with(format!("obj {i}").as_bytes(), None)
                .unwrap();
            cat.put(&format!("obj/{i}"), &o);
            cat.save(&mut store).unwrap();
        }
        let loaded = Catalog::load(&store).unwrap();
        assert_eq!(loaded.len(), 11);
        // The old catalog objects were deleted on each save: free space
        // shrank only by the 10 small objects plus catalog growth.
        assert!(free_after_first - store.buddy().total_free_pages() < 40);
    }

    #[test]
    fn empty_boot_record_is_an_empty_catalog() {
        let store = ObjectStore::in_memory(1024, 100);
        let cat = Catalog::load(&store).unwrap();
        assert!(cat.is_empty());
    }

    #[test]
    fn remove_forgets_the_name() {
        let mut store = ObjectStore::in_memory(1024, 1000);
        let a = store.create_with(b"x", None).unwrap();
        let mut cat = Catalog::new();
        cat.put("a", &a);
        assert!(cat.remove("a"));
        assert!(!cat.remove("a"));
        assert!(cat.is_empty());
    }
}
