//! Office-automation scenario (§1: "pictures may be annotated …
//! documents edited"): a text document stored as one large object,
//! edited with byte inserts/deletes, every edit journaled in the §4.5
//! WAL so the session supports undo and crash recovery.
//!
//! ```text
//! cargo run --release --example document_editor
//! ```

use eos::core::wal::{undo, Wal};
use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let volume = MemVolume::with_profile(4096, 8_192, DiskProfile::MODERN_HDD).shared();
    let mut store = ObjectStore::create(
        volume,
        1,
        8_000,
        StoreConfig {
            // Frequently updated: adaptive T tightens clustering only
            // when an index split nears ([Bili91a]).
            threshold: Threshold::Adaptive { base: 4 },
            ..StoreConfig::default()
        },
    )?;
    let mut wal = Wal::new();

    // A ~300 KB manuscript.
    let paragraph = "It is a truth universally acknowledged, that a single \
                     database in possession of a good fortune must be in \
                     want of a large object manager.\n";
    let manuscript: String = paragraph.repeat(2000);
    let mut doc = store.create_with(manuscript.as_bytes(), None)?;
    println!("manuscript: {} bytes", doc.size());

    // An editing session: every edit goes through the log first.
    wal.logged_insert(&mut store, &mut doc, 0, b"# Chapter One\n\n")?;
    wal.logged_replace(&mut store, &mut doc, 15, b"IT IS A TRUTH")?;
    // Strike a paragraph in the middle.
    let cut_at = doc.size() / 2;
    wal.logged_delete(&mut store, &mut doc, cut_at, paragraph.len() as u64)?;
    // Marginal note near the end.
    let note_at = doc.size() - 100;
    wal.logged_insert(&mut store, &mut doc, note_at, b"[citation needed] ")?;
    println!(
        "4 edits journaled; lsn={} size={} bytes",
        doc.lsn(),
        doc.size()
    );

    // Undo the last two edits (reverse LSN order, §4.5 idempotent undo).
    let records: Vec<_> = wal.records().to_vec();
    for r in records.iter().rev().take(2) {
        undo(&mut store, &mut doc, r)?;
    }
    println!("2 edits undone; lsn={} size={}", doc.lsn(), doc.size());

    // The document still starts with the first two (kept) edits.
    let head = store.read(&doc, 0, 32)?;
    assert!(head.starts_with(b"# Chapter One\n\nIT IS A TRUTH"));

    // Crash safety: a transaction scope keeps the committed image
    // intact while a big uncommitted edit is in flight.
    let committed = doc.to_bytes();
    let committed_head = store.read(&doc, 0, 64)?;
    store.begin_txn();
    let mut draft = doc;
    store.delete(&mut draft, 0, 50_000)?; // sweeping uncommitted edit
    store.insert(&mut draft, 1000, &vec![b'x'; 80_000])?;
    store.abort_txn()?; // the editor crashed — discard the draft
    let doc = eos::core::LargeObject::from_bytes(&committed)?;
    assert_eq!(store.read(&doc, 0, 64)?, committed_head);
    println!("crashed draft discarded; committed manuscript intact");

    // How clustered is the document after the session?
    let stats = store.object_stats(&doc)?;
    println!(
        "layout: {} segments, {} leaf pages, {:.1}% utilization, height {}",
        stats.segments,
        stats.leaf_pages,
        100.0 * stats.leaf_utilization(store.page_size()),
        stats.height,
    );
    store.verify_object(&doc)?;
    Ok(())
}
