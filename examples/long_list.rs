//! The "insertable array" scenario (§1: large objects support
//! "general-purpose advanced data modeling constructs such as long
//! lists or insertable arrays"): a list of fixed-width records layered
//! on one large object, with positional get/insert/remove — element
//! 5,000,000-ish positions deep costs the same as element 0.
//!
//! ```text
//! cargo run --release --example long_list
//! ```

use eos::core::{LargeObject, ObjectStore, Result, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};

/// A long list of fixed-width records stored in one large object.
struct LongList {
    obj: LargeObject,
    width: u64,
}

impl LongList {
    fn new(store: &mut ObjectStore, width: u64) -> LongList {
        LongList {
            obj: store.create_object(),
            width,
        }
    }

    fn len(&self) -> u64 {
        self.obj.size() / self.width
    }

    fn get(&self, store: &ObjectStore, i: u64) -> Result<Vec<u8>> {
        store.read(&self.obj, i * self.width, self.width)
    }

    fn push(&mut self, store: &mut ObjectStore, rec: &[u8]) -> Result<()> {
        assert_eq!(rec.len() as u64, self.width);
        store.append(&mut self.obj, rec)
    }

    fn insert(&mut self, store: &mut ObjectStore, i: u64, rec: &[u8]) -> Result<()> {
        assert_eq!(rec.len() as u64, self.width);
        store.insert(&mut self.obj, i * self.width, rec)
    }

    fn remove(&mut self, store: &mut ObjectStore, i: u64) -> Result<()> {
        store.delete(&mut self.obj, i * self.width, self.width)
    }

    fn set(&mut self, store: &mut ObjectStore, i: u64, rec: &[u8]) -> Result<()> {
        assert_eq!(rec.len() as u64, self.width);
        store.replace(&mut self.obj, i * self.width, rec)
    }
}

fn record(tag: u64) -> Vec<u8> {
    let mut r = vec![0u8; 64];
    r[..8].copy_from_slice(&tag.to_le_bytes());
    r[8..16].copy_from_slice(&(!tag).to_le_bytes());
    r
}

fn tag_of(rec: &[u8]) -> u64 {
    u64::from_le_bytes(rec[..8].try_into().unwrap())
}

fn main() -> Result<()> {
    let volume = MemVolume::with_profile(4096, 16_274, DiskProfile::MODERN_HDD).shared();
    let mut store = ObjectStore::create(
        volume,
        1,
        16_272,
        StoreConfig {
            threshold: Threshold::Fixed(8),
            ..StoreConfig::default()
        },
    )?;

    // Build a 200k-element list (12.8 MB) by appending.
    let mut list = LongList::new(&mut store, 64);
    {
        let mut sess = store.open_append(&mut list.obj, None)?;
        let mut batch = Vec::with_capacity(64 * 1000);
        for i in 0..200_000u64 {
            batch.extend(record(i));
            if batch.len() == 64 * 1000 {
                sess.append(&batch)?;
                batch.clear();
            }
        }
        sess.close()?;
    }
    // A few one-at-a-time appends on top of the bulk load.
    for i in 200_000u64..200_003 {
        list.push(&mut store, &record(i))?;
    }
    println!(
        "built a {}-element list ({} bytes)",
        list.len(),
        list.obj.size()
    );

    // Random access anywhere costs one descent + one segment read.
    store.reset_io_stats();
    assert_eq!(tag_of(&list.get(&store, 0)?), 0);
    let head_io = store.io_stats();
    store.reset_io_stats();
    assert_eq!(tag_of(&list.get(&store, 200_002)?), 200_002);
    let tail_io = store.io_stats();
    println!(
        "get(0): {} seeks / get(200_002): {} seeks — independent of position",
        head_io.seeks, tail_io.seeks
    );

    // Insert/remove in the middle: only the touched segment reorganizes.
    store.reset_io_stats();
    list.insert(&mut store, 100_000, &record(999_999))?;
    println!("insert @100k: {}", store.io_stats());
    assert_eq!(tag_of(&list.get(&store, 100_000)?), 999_999);
    assert_eq!(tag_of(&list.get(&store, 100_001)?), 100_000);

    store.reset_io_stats();
    list.remove(&mut store, 100_000)?;
    println!("remove @100k: {}", store.io_stats());
    assert_eq!(tag_of(&list.get(&store, 100_000)?), 100_000);

    // In-place update.
    list.set(&mut store, 42, &record(424_242))?;
    assert_eq!(tag_of(&list.get(&store, 42)?), 424_242);

    // Heavier churn: 1,000 random inserts/removes, list stays correct.
    let mut expected_len = list.len();
    let mut x = 0x1234_5678u64;
    for k in 0..1000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let i = x % list.len();
        if k % 2 == 0 {
            list.insert(&mut store, i, &record(7_000_000 + k))?;
            expected_len += 1;
        } else {
            list.remove(&mut store, i)?;
            expected_len -= 1;
        }
    }
    assert_eq!(list.len(), expected_len);
    store.verify_object(&list.obj)?;
    let stats = store.object_stats(&list.obj)?;
    println!(
        "after 1,000 random edits: {} elements in {} segments, {:.1}% utilization",
        list.len(),
        stats.segments,
        100.0 * stats.leaf_utilization(store.page_size())
    );
    Ok(())
}
