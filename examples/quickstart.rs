//! Quickstart: create a store, build a large object, run every §4
//! operation, and look at the I/O meters.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64 MiB volume of 4 KiB pages with a 1992-vintage disk profile
    // (the simulated timings the experiments report). `in_memory` would
    // do the same with defaults.
    let volume = MemVolume::with_profile(4096, 16_274, DiskProfile::VINTAGE_1992).shared();
    let mut store = ObjectStore::create(
        volume,
        1,      // buddy spaces
        16_272, // pages per space (the §3 maximum for 4 KiB pages)
        StoreConfig {
            threshold: Threshold::Fixed(8), // §4.4 segment-size threshold
            ..StoreConfig::default()
        },
    )?;

    // Create an object whose size is known in advance: one contiguous
    // segment, one seek to scan.
    let photo: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
    let mut obj = store.create_with(&photo, Some(photo.len() as u64))?;
    println!("created {} bytes, tree height {}", obj.size(), obj.height());

    // Byte-range read at an arbitrary offset.
    store.reset_io_stats();
    let slice = store.read(&obj, 1_500_000, 8_192)?;
    assert_eq!(slice, &photo[1_500_000..1_508_192]);
    println!("random 8 KiB read: {}", store.io_stats());

    // Replace in place, insert and delete at arbitrary offsets, append.
    store.replace(&mut obj, 0, b"EOS!")?;
    store.insert(&mut obj, 1_000_000, b"--spliced in the middle--")?;
    store.delete(&mut obj, 500_000, 123_456)?;
    store.append(&mut obj, b"and a trailer")?;
    println!("after updates: {} bytes", obj.size());

    // Multi-append with the doubling growth policy (§4.1).
    let mut tail = store.create_object();
    {
        let mut session = store.open_append(&mut tail, None)?;
        for chunk in photo.chunks(50_000) {
            session.append(chunk)?;
        }
        session.close()?; // trims the last segment
    }
    let stats = store.object_stats(&tail)?;
    println!(
        "doubling-growth object: {} segments over {} pages ({:.1}% leaf utilization)",
        stats.segments,
        stats.leaf_pages,
        100.0 * stats.leaf_utilization(store.page_size())
    );

    // The descriptor is yours to place — e.g. inside a small record.
    let bytes = obj.to_bytes();
    let restored = eos::core::LargeObject::from_bytes(&bytes)?;
    assert_eq!(restored.size(), obj.size());
    println!("descriptor round-trips in {} bytes", bytes.len());

    // Structural verification (the test oracle is public API too).
    store.verify_object(&obj)?;
    store.verify_object(&tail)?;
    println!("all invariants hold");
    Ok(())
}
