//! Multimedia scenario (§1: "think of playing digital sound recordings,
//! frame-to-frame accessing of a movie"): a video clip stored as one
//! large object, played back sequentially, then edited — a scene cut
//! (byte-range delete) and an insert (splicing frames in) — without
//! rewriting the clip.
//!
//! ```text
//! cargo run --release --example video_frames
//! ```

use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};

const FRAME_BYTES: usize = 30_000; // a small compressed frame
const FPS: u64 = 24;
const SECONDS: u64 = 20;

fn frame(i: u64) -> Vec<u8> {
    // Header + deterministic payload so edits can be verified.
    let mut f = vec![0u8; FRAME_BYTES];
    f[..8].copy_from_slice(&i.to_le_bytes());
    for (k, b) in f[8..].iter_mut().enumerate() {
        *b = ((i as usize + k) % 251) as u8;
    }
    f
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let volume = MemVolume::with_profile(4096, 16_274, DiskProfile::VINTAGE_1992).shared();
    let mut store = ObjectStore::create(
        volume,
        1,
        16_272,
        StoreConfig {
            // Reads dominate: a large threshold keeps frames clustered.
            threshold: Threshold::Fixed(32),
            ..StoreConfig::default()
        },
    )?;

    // Ingest: the camera streams frames; the final size is unknown, so
    // segments double (§4.1).
    let total_frames = FPS * SECONDS;
    let mut clip = store.create_object();
    {
        let mut rec = store.open_append(&mut clip, None)?;
        for i in 0..total_frames {
            rec.append(&frame(i))?;
        }
        rec.close()?;
    }
    let stats = store.object_stats(&clip)?;
    println!(
        "ingested {total_frames} frames = {:.1} MB in {} segments",
        clip.size() as f64 / 1e6,
        stats.segments
    );

    // Playback: sequential scan in 1-second chunks. The paper's point:
    // with physically contiguous segments the I/O rate approaches the
    // transfer rate (seeks are negligible).
    store.reset_io_stats();
    let chunk = FRAME_BYTES as u64 * FPS;
    for s in 0..SECONDS {
        let _ = store.read(&clip, s * chunk, chunk)?;
    }
    let io = store.io_stats();
    let transfer_only = io.transfers() * 2_000; // µs at 2 ms/page
    println!(
        "playback: {} seeks, {} page transfers -> {:.0}% of pure transfer rate",
        io.seeks,
        io.transfers(),
        100.0 * transfer_only as f64 / io.elapsed_us as f64,
    );

    // Edit 1: cut 2 seconds from the middle (a byte-range delete).
    let cut_from = 7 * chunk;
    store.reset_io_stats();
    store.delete(&mut clip, cut_from, 2 * chunk)?;
    println!(
        "scene cut (2s = {:.1} MB): {}",
        (2 * chunk) as f64 / 1e6,
        store.io_stats()
    );

    // Edit 2: splice 1 second of new frames where the cut was.
    let splice: Vec<u8> = (0..FPS).flat_map(|i| frame(9000 + i)).collect();
    store.reset_io_stats();
    store.insert(&mut clip, cut_from, &splice)?;
    println!("ad splice (1s): {}", store.io_stats());

    // Verify the edit: frame 7*FPS is now the first spliced frame.
    let got = store.read(&clip, cut_from, FRAME_BYTES as u64)?;
    assert_eq!(got, frame(9000));
    // And the frame after the splice is the one that followed the cut.
    let after = store.read(&clip, cut_from + chunk, FRAME_BYTES as u64)?;
    assert_eq!(after, frame(9 * FPS));

    // Re-check playback clustering after the edits.
    store.reset_io_stats();
    let size = clip.size();
    let _ = store.read(&clip, 0, size)?;
    let io = store.io_stats();
    let stats = store.object_stats(&clip)?;
    println!(
        "post-edit scan: {} seeks over {} segments ({} pages); invariants ok = {}",
        io.seeks,
        stats.segments,
        stats.leaf_pages,
        store.verify_object(&clip).is_ok()
    );
    Ok(())
}
