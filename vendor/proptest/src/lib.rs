//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of the `proptest` API the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any`
//! strategies, weighted unions ([`prop_oneof!`]), vector generation
//! ([`collection::vec`]), the [`proptest!`] test macro, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and seed;
//!   the generation is fully deterministic (seed = FNV of the test path,
//!   overridable via `PROPTEST_SEED`), so failures reproduce exactly.
//! * **No failure persistence files.**
//! * `PROPTEST_CASES` is honoured by the workspace's own helpers, not by
//!   this crate (the config struct is plain data either way).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, BoxedStrategy, Just, Map, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice between strategies producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let test_path = concat!(module_path!(), "::", stringify!($name));
            let seed = $crate::test_runner::seed_for(test_path);
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(seed, case as u64);
                let ($($arg,)+) =
                    $crate::Strategy::generate(&strategies, &mut rng);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest stub: {test_path} failed at case {case}/{} \
                         (seed {seed:#x}; rerun is deterministic)",
                        config.cases
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}
