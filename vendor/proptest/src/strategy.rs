//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of one value type
/// (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Build a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, strat) in &self.arms {
            if pick < u64::from(*w) {
                return strat.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

/// Marker strategy for [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start
                    .wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span =
                    (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1, 0);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::new(2, 0);
        let s = (1u64..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
        assert_eq!(Just(7).generate(&mut rng), 7);
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new(vec![(1, Just(0u8).boxed()), (0, Just(1u8).boxed())]);
        let mut rng = TestRng::new(3, 0);
        for _ in 0..100 {
            assert_eq!(u.generate(&mut rng), 0, "zero-weight arm picked");
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(4, 0);
        let (a, b) = (0u64..10, 10u64..20).generate(&mut rng);
        assert!(a < 10 && (10..20).contains(&b));
    }
}
