//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive length bounds for collection strategies.
///
/// Mirrors `proptest::collection::SizeRange`: `vec` takes the length as
/// `impl Into<SizeRange>`, which is what lets a bare `1..35` literal
/// infer `usize` at call sites.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

/// Strategy for vectors whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

/// `vec(element, 1..80)`: a vector of `element`-generated values with a
/// length drawn uniformly from the given bounds.
pub fn vec<S>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S>
where
    S: Strategy,
{
    VecStrategy {
        element,
        len: len.into(),
    }
}

impl<S> Strategy for VecStrategy<S>
where
    S: Strategy,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.hi.saturating_sub(self.len.lo).max(1) as u64;
        let n = self.len.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_range() {
        let s = vec(0u64..100, 1..10);
        let mut rng = TestRng::new(5, 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 10);
            assert!(v.iter().all(|&x| x < 100));
        }
    }
}
