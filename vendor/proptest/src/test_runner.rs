//! Deterministic RNG and run configuration for the proptest stand-in.

/// Run configuration. Only `cases` is interpreted; the struct accepts
/// functional-update syntax (`..ProptestConfig::default()`) like the
/// real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Derive the base seed for a test: FNV-1a of the test path, XORed with
/// `PROPTEST_SEED` when set (so a soak can explore fresh streams).
pub fn seed_for(test_path: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    match std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(s) => h ^ s,
        None => h,
    }
}

/// The deterministic generator handed to strategies: xoshiro256**
/// seeded from `(seed, case)` through splitmix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for one `(seed, case)` pair.
    pub fn new(seed: u64, case: u64) -> TestRng {
        let mut x = seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_per_test_and_case() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
        let mut r1 = TestRng::new(1, 0);
        let mut r2 = TestRng::new(1, 1);
        assert_ne!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(99, 5);
        let mut b = TestRng::new(99, 5);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
