//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of the criterion API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched_ref` — backed by a
//! simple wall-clock harness: each benchmark is warmed up briefly, then
//! timed over a fixed iteration budget and reported as mean ns/iter.
//! No statistics, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much of the setup product to batch per timing run
/// (accepted for API compatibility; batching is always per-iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench group] {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Run one standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }

    /// Set the default sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; reports are printed as benches run).
    pub fn finish(self) {}
}

fn run_one(name: &str, sample_size: usize, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size.max(1) as u64,
        total: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters > 0 {
        let ns = b.total.as_nanos() as f64 / b.timed_iters as f64;
        eprintln!("  {name}: {ns:.0} ns/iter ({} iters)", b.timed_iters);
    } else {
        eprintln!("  {name}: no timed iterations");
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine` over the iteration budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.iters.min(3) {
            black_box(routine()); // warm-up
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.timed_iters += self.iters;
    }

    /// Time `routine` against a fresh `setup()` product each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.total += start.elapsed();
            self.timed_iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched_ref`] but passing the input by value.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// Group several benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("inc", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched_ref(Vec::<u8>::new, |v| v.push(1), BatchSize::SmallInput)
        });
        group.finish();
        assert!(runs >= 5);
    }
}
