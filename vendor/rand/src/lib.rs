//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this crate provides
//! the pieces of `rand` the workspace uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is a
//! xoshiro256** seeded through splitmix64 — deterministic, fast, and
//! more than good enough for tests and benchmarks. It is **not** the
//! same stream as the real `StdRng` (ChaCha12); anything relying on
//! specific values from a seed would differ, but nothing in this
//! workspace does.

#![forbid(unsafe_code)]

/// The core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (matching `rand` 0.8).
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniformly random value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::draw(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (matching `rand` 0.8).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy (here: the system clock).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xDEAD_BEEF);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A clock-seeded [`rngs::StdRng`] (process-local, not thread-local —
/// sufficient for the workspace's usage).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=5);
            assert!(w <= 5);
            let i: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
