//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of the `parking_lot` API the workspace uses, implemented
//! on `std::sync`. Semantics match `parking_lot` where it matters:
//! `lock()` never returns a poison error (a poisoned `std` mutex is
//! recovered with `into_inner`), and `Condvar::wait` takes the guard by
//! `&mut` reference.

#![forbid(unsafe_code)]

mod tracked;

pub use tracked::{
    on_volume_io, LockClass, TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedReadGuard,
    TrackedRwLock, TrackedWriteGuard,
};

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (see [`parking_lot::Mutex`]).
///
/// [`parking_lot::Mutex`]: https://docs.rs/parking_lot
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard
    // out, block on it, and put the re-acquired guard back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, panics in other threads do not poison the
    /// lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable (see [`parking_lot::Condvar`]).
///
/// [`parking_lot::Condvar`]: https://docs.rs/parking_lot
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock (see [`parking_lot::RwLock`]).
///
/// [`parking_lot::RwLock`]: https://docs.rs/parking_lot
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value (poison discarded).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
