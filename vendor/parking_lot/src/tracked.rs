//! Lock-order witness (`eos-lockdep`, dynamic side).
//!
//! [`TrackedMutex`] / [`TrackedRwLock`] / [`TrackedCondvar`] wrap this
//! crate's lock types and tag each lock with a [`LockClass`]. With the
//! `lockdep` cargo feature **off** (the default) they are transparent
//! zero-cost wrappers. With the feature **on**, every acquisition is
//! checked against a process-global acquisition-order graph:
//!
//! * each thread keeps a stack of the lock classes it currently holds;
//! * the first time class `B` is acquired while `A` is held, the edge
//!   `A → B` is recorded together with a witness (thread, held stack,
//!   acquire locations);
//! * acquiring `A` while `B` is held after that — an order inversion,
//!   i.e. a potential deadlock — panics with **both** witness stacks;
//! * recursive acquisition of one class panics (the paper's §4.5
//!   short-duration latches are never re-entrant);
//! * [`on_volume_io`] panics if any held class was declared
//!   [`LockClass::forbids_io`] — a latch held across `Volume` I/O.
//!
//! The check runs *before* blocking on the underlying lock, so a true
//! deadlock is reported instead of hanging the test. The static twin
//! of this witness is eos-lint rule L5, which reads the same class
//! names from `// lock-class:` declarations; `DESIGN.md` §13 holds the
//! hierarchy table.

use crate::{Condvar, Mutex, MutexGuard, RwLock};
use std::ops::{Deref, DerefMut};
use std::sync;

/// A declared lock class: the unit the order graph is built over.
///
/// Equality is by `name`; every lock constructed with the same class
/// name shares one node in the acquisition-order graph. `io_allowed`
/// marks the classes that legitimately cover `Volume` I/O (the store
/// latch during a latched commit phase, the volume mutex itself).
#[derive(Debug, Clone, Copy)]
pub struct LockClass {
    name: &'static str,
    io_allowed: bool,
}

impl LockClass {
    /// A class that must never be held across `Volume` I/O.
    pub const fn forbids_io(name: &'static str) -> LockClass {
        LockClass {
            name,
            io_allowed: false,
        }
    }

    /// A class that may cover `Volume` I/O (the bottom of the order).
    pub const fn allows_io(name: &'static str) -> LockClass {
        LockClass {
            name,
            io_allowed: true,
        }
    }

    /// The class name, as used in `// lock-class:` declarations.
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Whether this class may be held across `Volume` I/O.
    pub const fn io_allowed(&self) -> bool {
        self.io_allowed
    }
}

/// Hook called by `Volume` implementations on entry to every I/O
/// primitive. Panics (feature `lockdep` only) if the calling thread
/// holds a lock class declared `forbids_io`.
#[cfg(feature = "lockdep")]
#[track_caller]
pub fn on_volume_io(op: &str) {
    imp::check_io(op);
}

/// Hook called by `Volume` implementations on entry to every I/O
/// primitive. No-op without the `lockdep` feature.
#[cfg(not(feature = "lockdep"))]
#[inline(always)]
pub fn on_volume_io(_op: &str) {}

/// A [`Mutex`] tagged with a [`LockClass`] for the lockdep witness.
#[derive(Debug)]
pub struct TrackedMutex<T: ?Sized> {
    class: LockClass,
    inner: Mutex<T>,
}

/// RAII guard returned by [`TrackedMutex::lock`].
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    token: imp::HeldToken,
    inner: MutexGuard<'a, T>,
}

impl<T> TrackedMutex<T> {
    /// Create a new mutex of class `class` holding `value`.
    pub const fn new(class: LockClass, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// The lock class this mutex was registered under.
    pub fn class(&self) -> &'static str {
        self.class.name
    }

    /// Acquire the mutex. With `lockdep` on, records the acquisition
    /// in the order graph first and panics on an order inversion.
    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let token = imp::acquire(&self.class);
        TrackedMutexGuard {
            #[cfg(feature = "lockdep")]
            token,
            inner: self.inner.lock(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        imp::release(self.token);
    }
}

/// A [`Condvar`] that keeps the lockdep held-stack truthful across
/// [`wait`](TrackedCondvar::wait): the guard's class is popped while
/// the thread is blocked and re-checked on wakeup.
#[derive(Debug, Default)]
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// Create a new condition variable.
    pub const fn new() -> TrackedCondvar {
        TrackedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Block until notified, releasing `guard` (and its lockdep
    /// tracking) while waiting.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut TrackedMutexGuard<'_, T>) {
        #[cfg(feature = "lockdep")]
        imp::release(guard.token);
        self.inner.wait(&mut guard.inner);
        #[cfg(feature = "lockdep")]
        {
            guard.token = imp::reacquire(guard.token);
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A [`RwLock`] tagged with a [`LockClass`] for the lockdep witness.
/// Read and write acquisitions share the class node: the order
/// discipline does not distinguish lock modes.
#[derive(Debug)]
pub struct TrackedRwLock<T: ?Sized> {
    class: LockClass,
    inner: RwLock<T>,
}

/// RAII shared-read guard returned by [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    token: imp::HeldToken,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard returned by [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lockdep")]
    token: imp::HeldToken,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> TrackedRwLock<T> {
    /// Create a new lock of class `class` holding `value`.
    pub const fn new(class: LockClass, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// The lock class this lock was registered under.
    pub fn class(&self) -> &'static str {
        self.class.name
    }

    /// Acquire shared read access (checked like any acquisition).
    #[track_caller]
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let token = imp::acquire(&self.class);
        TrackedReadGuard {
            #[cfg(feature = "lockdep")]
            token,
            inner: self.inner.read(),
        }
    }

    /// Acquire exclusive write access (checked like any acquisition).
    #[track_caller]
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        let token = imp::acquire(&self.class);
        TrackedWriteGuard {
            #[cfg(feature = "lockdep")]
            token,
            inner: self.inner.write(),
        }
    }
}

impl<T: ?Sized> Deref for TrackedReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        imp::release(self.token);
    }
}

#[cfg(feature = "lockdep")]
impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        imp::release(self.token);
    }
}

#[cfg(feature = "lockdep")]
mod imp {
    //! The witness proper: class registry, per-thread held stacks, and
    //! the global first-observed-edge graph.

    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Index into [`Registry::classes`].
    type ClassId = u32;

    /// One frame of a thread's held stack.
    #[derive(Clone, Copy)]
    struct HeldFrame {
        id: ClassId,
        location: &'static Location<'static>,
    }

    /// Returned by [`acquire`]; identifies the frame to pop on drop.
    #[derive(Clone, Copy)]
    pub struct HeldToken {
        id: ClassId,
    }

    /// Witness for the first observation of an order edge.
    struct EdgeWitness {
        thread: String,
        /// Rendered held stack at observation time, innermost last.
        held: String,
        acquired: String,
    }

    #[derive(Default)]
    struct Registry {
        by_name: HashMap<&'static str, ClassId>,
        /// `(name, io_allowed)` per class, indexed by `ClassId`.
        classes: Vec<(&'static str, bool)>,
        /// First witness per directed edge `held → acquired`.
        edges: HashMap<(ClassId, ClassId), EdgeWitness>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldFrame>> = const { RefCell::new(Vec::new()) };
    }

    fn thread_name() -> String {
        let current = std::thread::current();
        match current.name() {
            Some(name) => name.to_string(),
            None => format!("{:?}", current.id()),
        }
    }

    fn render_stack(reg: &Registry, held: &[HeldFrame]) -> String {
        let mut out = String::new();
        for frame in held {
            let (name, _) = reg.classes[frame.id as usize];
            out.push_str(&format!(
                "\n      holds `{}` acquired at {}",
                name, frame.location
            ));
        }
        out
    }

    /// Register (or look up) a class and check the acquisition against
    /// the order graph. Panics on recursion or inversion. Called
    /// *before* blocking on the lock so deadlocks report, not hang.
    #[track_caller]
    pub fn acquire(class: &LockClass) -> HeldToken {
        let location = Location::caller();
        let held: Vec<HeldFrame> = HELD.with(|h| h.borrow().clone());
        let mut failure: Option<String> = None;
        let id = {
            let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            let id = match reg.by_name.get(class.name) {
                Some(&id) => {
                    let (_, io) = reg.classes[id as usize];
                    assert!(
                        io == class.io_allowed,
                        "lockdep: class `{}` registered with conflicting io policy",
                        class.name
                    );
                    id
                }
                None => {
                    let id = reg.classes.len() as ClassId;
                    reg.classes.push((class.name, class.io_allowed));
                    reg.by_name.insert(class.name, id);
                    id
                }
            };
            for frame in &held {
                if frame.id == id {
                    failure = Some(format!(
                        "lockdep: recursive acquisition of lock class `{}`\n  \
                         first acquired at {}\n  acquired again at {} on thread '{}'",
                        class.name,
                        frame.location,
                        location,
                        thread_name()
                    ));
                    break;
                }
                // An edge `acquiring → held` already in the graph means
                // some thread took these classes in the opposite order.
                if let Some(witness) = reg.edges.get(&(id, frame.id)) {
                    let (held_name, _) = reg.classes[frame.id as usize];
                    failure = Some(format!(
                        "lockdep: lock-order inversion acquiring `{}` while holding `{}`\n  \
                         edge `{}` -> `{}` first observed on thread '{}':{}\n      \
                         then acquired {}\n  \
                         conflicting acquisition on thread '{}':{}\n      \
                         now acquiring `{}` at {}",
                        class.name,
                        held_name,
                        class.name,
                        held_name,
                        witness.thread,
                        witness.held,
                        witness.acquired,
                        thread_name(),
                        render_stack(&reg, &held),
                        class.name,
                        location
                    ));
                    break;
                }
            }
            if failure.is_none() {
                for frame in &held {
                    let key = (frame.id, id);
                    if !reg.edges.contains_key(&key) {
                        let rendered = render_stack(&reg, &held);
                        reg.edges.insert(
                            key,
                            EdgeWitness {
                                thread: thread_name(),
                                held: rendered,
                                acquired: format!("`{}` at {}", class.name, location),
                            },
                        );
                    }
                }
            }
            // Drop the registry lock before panicking.
            id
        };
        if let Some(message) = failure {
            panic!("{message}");
        }
        HELD.with(|h| h.borrow_mut().push(HeldFrame { id, location }));
        HeldToken { id }
    }

    /// Re-check and re-push a class after a condvar wait.
    #[track_caller]
    pub fn reacquire(token: HeldToken) -> HeldToken {
        let (name, io_allowed) = {
            let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            reg.classes[token.id as usize]
        };
        let class = if io_allowed {
            LockClass::allows_io(name)
        } else {
            LockClass::forbids_io(name)
        };
        acquire(&class)
    }

    /// Pop the most recent frame of `token`'s class from the held
    /// stack (guards release LIFO in practice; popping the latest
    /// matching frame keeps out-of-order drops correct too).
    pub fn release(token: HeldToken) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|f| f.id == token.id) {
                held.remove(pos);
            }
        });
    }

    /// Panic if the current thread holds any `forbids_io` class.
    #[track_caller]
    pub fn check_io(op: &str) {
        let location = Location::caller();
        let held: Vec<HeldFrame> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let failure = {
            let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
            held.iter().find_map(|frame| {
                let (name, io_allowed) = reg.classes[frame.id as usize];
                if io_allowed {
                    None
                } else {
                    Some(format!(
                        "lockdep: volume I/O `{}` at {} while lock class `{}` is held\n  \
                         class `{}` forbids I/O (declared io = forbidden); \
                         acquired at {} on thread '{}'{}",
                        op,
                        location,
                        name,
                        name,
                        frame.location,
                        thread_name(),
                        render_stack(&reg, &held)
                    ))
                }
            })
        };
        if let Some(message) = failure {
            panic!("{message}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_mutex_roundtrip() {
        const CLASS: LockClass = LockClass::forbids_io("test.roundtrip");
        let m = TrackedMutex::new(CLASS, 5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.class(), "test.roundtrip");
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn tracked_rwlock_shared_and_exclusive() {
        const CLASS: LockClass = LockClass::forbids_io("test.rw");
        let l = TrackedRwLock::new(CLASS, 1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn tracked_condvar_wakes_waiter() {
        use std::sync::Arc;
        const CLASS: LockClass = LockClass::forbids_io("test.cv");
        let pair = Arc::new((TrackedMutex::new(CLASS, false), TrackedCondvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[cfg(feature = "lockdep")]
    mod lockdep {
        use super::super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        fn panic_message(result: std::thread::Result<()>) -> String {
            match result {
                Ok(()) => panic!("expected a lockdep panic"),
                Err(payload) => payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .expect("panic payload should be a string"),
            }
        }

        #[test]
        fn ab_ba_inversion_panics_with_both_witnesses() {
            const A: LockClass = LockClass::forbids_io("inv.a");
            const B: LockClass = LockClass::forbids_io("inv.b");
            let a = TrackedMutex::new(A, ());
            let b = TrackedMutex::new(B, ());
            {
                let _ga = a.lock();
                let _gb = b.lock(); // establishes a -> b
            }
            let _gb = b.lock();
            let message = panic_message(catch_unwind(AssertUnwindSafe(|| {
                let _ga = a.lock(); // b -> a: inversion
            })));
            assert!(message.contains("lock-order inversion"), "{message}");
            assert!(message.contains("`inv.a`"), "{message}");
            assert!(message.contains("`inv.b`"), "{message}");
            assert!(message.contains("first observed"), "{message}");
            // Both witnesses carry source locations in this file.
            assert!(
                message.match_indices("tracked.rs").count() >= 2,
                "{message}"
            );
        }

        #[test]
        fn recursive_acquisition_panics() {
            const C: LockClass = LockClass::forbids_io("rec.c");
            let m = TrackedMutex::new(C, ());
            let _g = m.lock();
            let message = panic_message(catch_unwind(AssertUnwindSafe(|| {
                let _g2 = m.lock();
            })));
            assert!(message.contains("recursive acquisition"), "{message}");
        }

        #[test]
        fn io_under_forbidden_class_panics() {
            const C: LockClass = LockClass::forbids_io("io.forbid");
            let m = TrackedMutex::new(C, ());
            let _g = m.lock();
            let message = panic_message(catch_unwind(AssertUnwindSafe(|| {
                on_volume_io("read");
            })));
            assert!(message.contains("volume I/O `read`"), "{message}");
            assert!(message.contains("`io.forbid`"), "{message}");
        }

        #[test]
        fn io_under_allowed_class_is_silent() {
            const C: LockClass = LockClass::allows_io("io.allow");
            let m = TrackedMutex::new(C, ());
            let _g = m.lock();
            on_volume_io("write");
        }

        #[test]
        fn consistent_order_is_silent() {
            const A: LockClass = LockClass::forbids_io("ord.a");
            const B: LockClass = LockClass::forbids_io("ord.b");
            let a = TrackedMutex::new(A, ());
            let b = TrackedRwLock::new(B, ());
            for _ in 0..3 {
                let _ga = a.lock();
                let _gb = b.write();
            }
            let _ga = a.lock();
            let _gb = b.read();
        }

        #[test]
        fn condvar_wait_retracks_guard() {
            use std::sync::Arc;
            const C: LockClass = LockClass::forbids_io("cv.retrack");
            let pair = Arc::new((TrackedMutex::new(C, false), TrackedCondvar::new()));
            let p2 = pair.clone();
            let t = std::thread::spawn(move || {
                let (m, cv) = &*p2;
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
                // The guard is tracked again after the wait: a second
                // acquisition of the same class must be caught.
                let message = panic_message(std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| {
                        let _g2 = m.lock();
                    }),
                ));
                assert!(message.contains("recursive acquisition"), "{message}");
            });
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_all();
            }
            t.join().unwrap();
        }
    }
}
