//! The concurrent front-end under load: a seeded multi-writer /
//! multi-reader stress test against a single-threaded replay, plus the
//! commit-path failure drills (log-full mid-commit must abort cleanly).

use std::sync::Arc;
use std::time::Duration;

use eos::core::durable::WalEntry;
use eos::core::{ConcurrentStore, Error, ObjectStore, StoreConfig};
use eos::obs::Metrics;
use eos::pager::{DiskProfile, MemVolume, SharedVolume, ThrottledVolume};

fn pattern(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(31)
                .wrapping_add(seed.wrapping_mul(17))
                % 251) as u8
        })
        .collect()
}

/// Deterministic xorshift so every run (and the serial replay) sees
/// the same operation stream. Override the default with
/// `EOS_STRESS_SEED` to explore other schedules.
fn stress_seed() -> u64 {
    std::env::var("EOS_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE05_BEEF)
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One writer's scripted transaction stream: mutate its own object,
/// mirror every operation into a byte model, commit each transaction.
/// Returns the object and the model for the final comparison. The same
/// function drives the threaded run and the serial replay.
fn writer_script(txns: u64, seed: u64) -> Vec<(u8, u64, u64)> {
    let mut r = XorShift(seed | 1);
    let mut script = Vec::new();
    for _ in 0..txns {
        let op = (r.next() % 4) as u8;
        script.push((op, r.next(), r.next()));
    }
    script
}

/// Apply one scripted step to `(txn, obj)` and the `model` in step.
fn apply_step(
    step: (u8, u64, u64),
    txn: &eos::core::Txn,
    obj: &mut eos::core::LargeObject,
    model: &mut Vec<u8>,
) {
    let (op, a, b) = step;
    let size = model.len() as u64;
    match op {
        0 => {
            let data = pattern(a, 200 + (b % 800) as usize);
            txn.append(obj, &data).unwrap();
            model.extend_from_slice(&data);
        }
        1 if size > 0 => {
            let off = a % size;
            let len = (b % 500).min(size - off).max(1);
            let data = pattern(b, len as usize);
            txn.replace(obj, off, &data).unwrap();
            model[off as usize..(off + len) as usize].copy_from_slice(&data);
        }
        2 => {
            let off = a % (size + 1);
            let data = pattern(a ^ b, 100 + (b % 300) as usize);
            txn.insert(obj, off, &data).unwrap();
            model.splice(off as usize..off as usize, data.iter().copied());
        }
        _ if size > 1 => {
            let off = a % size;
            let len = (b % 400).min(size - off).max(1);
            txn.delete(obj, off, len).unwrap();
            model.drain(off as usize..(off + len) as usize);
        }
        _ => {
            let data = pattern(a, 64);
            txn.append(obj, &data).unwrap();
            model.extend_from_slice(&data);
        }
    }
}

/// Four writers on disjoint objects, two readers on a shared object,
/// group commit on. The final bytes of every object must equal a
/// single-threaded replay of the same scripts, the group-commit
/// histogram must show real batching, and the volume must pass a full
/// `eos check` afterwards.
#[test]
fn seeded_multiwriter_stress_matches_serial_replay() {
    const WRITERS: u64 = 4;
    const TXNS: u64 = 20;
    let seed = stress_seed();

    let run = |concurrent: bool| -> Vec<Vec<u8>> {
        let inner: SharedVolume =
            MemVolume::with_profile(1024, (1024 + 1) * 2 + 62, DiskProfile::FREE).shared();
        let throttled = Arc::new(ThrottledVolume::new(inner, Duration::from_micros(300)));
        let volume: SharedVolume = throttled.clone();
        let mut store = ObjectStore::create_durable(
            volume,
            2,
            1024,
            StoreConfig {
                sync_on_commit: true,
                ..StoreConfig::default()
            },
            62,
        )
        .unwrap();
        let metrics = Metrics::new();
        store.set_metrics(&metrics);

        // The shared object readers will hammer; committed up front.
        let shared_bytes = pattern(99, 120_000);
        let shared_obj = store.create_with(&shared_bytes, None).unwrap();

        let cs = ConcurrentStore::new(store);
        let mut finals: Vec<Vec<u8>> = Vec::new();
        let mut objs: Vec<eos::core::LargeObject> = Vec::new();

        if concurrent {
            let mut handles = Vec::new();
            for w in 0..WRITERS {
                let cs = cs.clone();
                handles.push(std::thread::spawn(move || {
                    let script = writer_script(TXNS, seed.wrapping_add(w));
                    let txn = cs.begin();
                    let mut obj = txn.create(&pattern(w, 1000), None).unwrap();
                    txn.commit().unwrap();
                    let mut model = pattern(w, 1000);
                    for step in script {
                        let txn = cs.begin();
                        apply_step(step, &txn, &mut obj, &mut model);
                        txn.commit().unwrap();
                    }
                    (obj, model)
                }));
            }
            let mut readers = Vec::new();
            for r in 0..2u64 {
                let cs = cs.clone();
                let expect = shared_bytes.clone();
                let obj = shared_obj.clone();
                readers.push(std::thread::spawn(move || {
                    let mut x = XorShift(seed ^ (r + 77));
                    for _ in 0..40 {
                        let txn = cs.begin();
                        let off = x.next() % (expect.len() as u64 - 4096);
                        let len = x.next() % 4096;
                        let got = txn.read(&obj, off, len).unwrap();
                        assert_eq!(got, &expect[off as usize..(off + len) as usize]);
                        txn.commit().unwrap();
                    }
                }));
            }
            for h in handles {
                let (obj, model) = h.join().unwrap();
                objs.push(obj);
                finals.push(model);
            }
            for r in readers {
                r.join().unwrap();
            }
        } else {
            for w in 0..WRITERS {
                let script = writer_script(TXNS, seed.wrapping_add(w));
                let txn = cs.begin();
                let mut obj = txn.create(&pattern(w, 1000), None).unwrap();
                txn.commit().unwrap();
                let mut model = pattern(w, 1000);
                for step in script {
                    let txn = cs.begin();
                    apply_step(step, &txn, &mut obj, &mut model);
                    txn.commit().unwrap();
                }
                objs.push(obj);
                finals.push(model);
            }
        }

        // The threaded phase garbles span attribution (concurrent
        // spans interleave), so snapshot the group-commit evidence
        // first, then reconcile attribution over a *serialized* tail.
        let snap = metrics.snapshot();
        if concurrent {
            let batches = snap.counter("wal.group_commits").unwrap_or(0);
            let hist = snap
                .histogram("wal.group_commit.batch")
                .expect("batch histogram registered");
            assert!(batches > 0, "group leader never ran");
            assert_eq!(hist.count, batches);
            assert!(
                hist.sum > hist.count,
                "no batch ever exceeded one transaction (sum {}, count {})",
                hist.sum,
                hist.count
            );
        }

        let mut store = match cs.try_into_inner() {
            Ok(s) => s,
            Err(_) => panic!("a handle outlived the threads"),
        };

        // Everything the threads wrote is visible through the plain
        // store, byte for byte.
        for (obj, model) in objs.iter().zip(&finals) {
            assert_eq!(&store.read_all(obj).unwrap(), model);
        }
        assert_eq!(store.read_all(&shared_obj).unwrap(), shared_bytes);

        // Serialized phase: with one thread every page of I/O happens
        // under exactly one span, so per-op attribution must sum to
        // the volume-global IoStats delta.
        let fresh = Metrics::new();
        store.set_metrics(&fresh);
        store.reset_io_stats();
        let mut extra = store.create_with(&pattern(7, 30_000), None).unwrap();
        store.append(&mut extra, &pattern(8, 5_000)).unwrap();
        store.replace(&mut extra, 100, &pattern(9, 2_000)).unwrap();
        let _ = store.read_all(&extra).unwrap();
        let snap = store.metrics_snapshot();
        let io = store.io_stats();
        assert_eq!(snap.attributed_seeks(), io.seeks);
        assert_eq!(snap.attributed_transfers(), io.page_reads + io.page_writes);

        // The volume is structurally clean: no leaks, no double-owned
        // pages, directories consistent.
        let mut named: Vec<(String, eos::core::LargeObject)> = objs
            .iter()
            .enumerate()
            .map(|(i, o)| (format!("writer-{i}"), o.clone()))
            .collect();
        named.push(("shared".to_string(), shared_obj.clone()));
        named.push(("extra".to_string(), extra.clone()));
        let report = eos_check::check_store(&store, &named, None);
        assert!(report.is_clean(), "{}", report.render_table());

        finals
    };

    let threaded = run(true);
    let serial = run(false);
    assert_eq!(threaded, serial, "threaded run diverged from serial replay");
}

/// Sixteen writers on a sharded store (8 WAL stripes, 4 buddy
/// spaces), run through both commit pipelines — solo (per-stripe
/// forces overlap) and grouped (one leader lane per stripe) — and
/// checked against a single-threaded replay of the same scripts.
/// Under `--features lockdep` the runtime witness watches the whole
/// sharded lock order: `wal.scopes` → `wal.stripe`, `buddy.space`,
/// and the store latch never wrapping a lane mutex.
#[test]
fn sixteen_writer_striped_stress_matches_serial_replay() {
    const WRITERS: u64 = 16;
    const TXNS: u64 = 6;
    let seed = stress_seed();

    for group in [false, true] {
        let run = |concurrent: bool| -> Vec<Vec<u8>> {
            let inner: SharedVolume =
                MemVolume::with_profile(1024, (1024 + 1) * 4 + 8 * 62, DiskProfile::FREE).shared();
            let throttled = Arc::new(ThrottledVolume::new(inner, Duration::from_micros(100)));
            let volume: SharedVolume = throttled.clone();
            let store = ObjectStore::create_durable(
                volume,
                4,
                1024,
                StoreConfig {
                    sync_on_commit: true,
                    wal_stripes: 8,
                    ..StoreConfig::default()
                },
                8 * 62,
            )
            .unwrap();
            let cs = ConcurrentStore::with_group_commit(store, group);

            let worker = |w: u64, cs: &ConcurrentStore| -> (eos::core::LargeObject, Vec<u8>) {
                let script = writer_script(TXNS, seed.wrapping_add(w));
                let txn = cs.begin();
                let mut obj = txn.create(&pattern(w, 600), None).unwrap();
                txn.commit().unwrap();
                let mut model = pattern(w, 600);
                for step in script {
                    let txn = cs.begin();
                    apply_step(step, &txn, &mut obj, &mut model);
                    txn.commit().unwrap();
                }
                (obj, model)
            };

            let mut finals: Vec<Vec<u8>> = Vec::new();
            let mut objs: Vec<eos::core::LargeObject> = Vec::new();
            if concurrent {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..WRITERS)
                        .map(|w| {
                            let cs = cs.clone();
                            s.spawn(move || worker(w, &cs))
                        })
                        .collect();
                    for h in handles {
                        let (obj, model) = h.join().unwrap();
                        objs.push(obj);
                        finals.push(model);
                    }
                });
            } else {
                for w in 0..WRITERS {
                    let (obj, model) = worker(w, &cs);
                    objs.push(obj);
                    finals.push(model);
                }
            }

            let store = match cs.try_into_inner() {
                Ok(s) => s,
                Err(_) => panic!("a handle outlived the threads"),
            };
            for (obj, model) in objs.iter().zip(&finals) {
                assert_eq!(&store.read_all(obj).unwrap(), model);
            }
            let named: Vec<(String, eos::core::LargeObject)> = objs
                .iter()
                .enumerate()
                .map(|(i, o)| (format!("writer-{i}"), o.clone()))
                .collect();
            let report = eos_check::check_store(&store, &named, None);
            assert!(
                report.is_clean(),
                "group={group}: {}",
                report.render_table()
            );
            finals
        };

        let threaded = run(true);
        let serial = run(false);
        assert_eq!(
            threaded, serial,
            "group={group}: threaded run diverged from serial replay"
        );
    }
}

/// A commit whose record cannot fit in the log (even after a
/// checkpoint flip) must fail with `LogFull` and leave the store
/// exactly as an abort would: transaction gone, objects intact,
/// allocator clean, next transaction unaffected.
#[test]
fn log_full_during_commit_aborts_cleanly() {
    // 256-byte pages; the WAL gets 18 pages = 2 superblocks + two
    // 8-page halves, so each half holds 2048 log bytes.
    const HALF: usize = 8 * 256;
    let vol: SharedVolume = MemVolume::with_profile(256, 513 + 18, DiskProfile::FREE).shared();
    let mut store = ObjectStore::create_durable(vol, 1, 512, StoreConfig::default(), 18).unwrap();

    // Create small committed objects until one transaction deleting
    // all of them could not possibly commit: its commit record (one
    // tombstone per object) plus the checkpoint that the append would
    // flip to (one root per object) exceed the half. Deletes log no
    // per-op entries, so the commit record is the first thing to hit
    // the limit — exactly the mid-commit failure under test.
    let mut objs = Vec::new();
    loop {
        let data = pattern(objs.len() as u64, 40);
        objs.push((store.create_with(&data, None).unwrap(), data));
        let wal = store.durable_wal().unwrap();
        let cp = WalEntry::Checkpoint {
            max_lsn: 0,
            roots: wal
                .committed()
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
        };
        let commit = WalEntry::Commit {
            txn: 0,
            lsn: 0,
            participants: 1,
            touched: Vec::new(),
            deleted: objs.iter().map(|(o, _)| o.id()).collect(),
        };
        // Three frame headers (checkpoint, commit, terminator) are
        // deliberately ignored: requiring the payloads alone to
        // overflow only makes the condition stronger.
        if cp.to_bytes().len() + commit.to_bytes().len() > HALF {
            break;
        }
        assert!(objs.len() < 200, "calibration ran away");
    }

    store.begin_txn();
    for (obj, _) in objs.iter_mut() {
        store.delete_object(obj).unwrap();
    }
    let err = store.commit_txn().unwrap_err();
    assert!(matches!(err, Error::LogFull { .. }), "got {err}");

    // The failed commit degenerated into a clean abort: no open scope,
    // every object byte-intact, and the allocator took no damage. The
    // client-side descriptors were mutated by the (rolled-back)
    // deletes, so rehydrate them from the committed root map — exactly
    // what a client recovering from an abort does.
    assert!(!store.in_txn());
    let committed: Vec<(u64, Vec<u8>)> = {
        let wal = store.durable_wal().unwrap();
        wal.committed()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    };
    for (obj, data) in objs.iter_mut() {
        let root = committed
            .iter()
            .find(|(id, _)| *id == obj.id())
            .unwrap_or_else(|| panic!("object {} missing from the committed map", obj.id()));
        *obj = eos::core::LargeObject::from_bytes(&root.1).unwrap();
        assert_eq!(&store.read_all(obj).unwrap(), data);
    }

    // The store remains fully usable for a normal-sized transaction.
    store.begin_txn();
    let keeper = store.create_with(&pattern(500, 64), None).unwrap();
    store.commit_txn().unwrap();

    let mut named: Vec<(String, eos::core::LargeObject)> = objs
        .iter()
        .enumerate()
        .map(|(i, (o, _))| (format!("obj-{i}"), o.clone()))
        .collect();
    named.push(("keeper".to_string(), keeper));
    let report = eos_check::check_store(&store, &named, None);
    assert!(report.is_clean(), "{}", report.render_table());
}
