//! The exhaustive crash-point sweep: for a scripted workload of
//! transactional create/append/insert/delete/replace/delete-object
//! operations against a durable store, simulate a power loss after
//! exactly *k* page writes — for **every** k the workload performs, and
//! for both clean and torn final writes — then reopen the half-written
//! volume, run restart recovery, and assert:
//!
//! 1. every transaction whose commit returned success before the crash
//!    is present byte-for-byte (committed-prefix equality);
//! 2. the transaction in flight at the crash is either fully present or
//!    fully absent — present only if the crash hit its commit append
//!    (the limbo window §4.5 allows), never a byte-mixture;
//! 3. `eos-check` finds nothing wrong with the recovered volume.

use std::collections::BTreeMap;
use std::sync::Arc;

use eos::core::{ConcurrentStore, LargeObject, ObjectStore, StoreConfig};
use eos::pager::{CrashPointVolume, DiskProfile, MemVolume, SharedVolume};

const PAGE: usize = 512;
const SPACES: usize = 2;
const PPS: u64 = 126;
const WAL_PAGES: u64 = 66;
const VOLUME_PAGES: u64 = (PPS + 1) * SPACES as u64 + WAL_PAGES;

// The striped variant runs two WAL stripes; each slice gets the full
// single-log capacity so checkpoint pressure stays comparable.
const STRIPED_WAL_PAGES: u64 = 2 * WAL_PAGES;
const STRIPED_VOLUME_PAGES: u64 = (PPS + 1) * SPACES as u64 + STRIPED_WAL_PAGES;

fn striped_config() -> StoreConfig {
    StoreConfig {
        wal_stripes: 2,
        ..StoreConfig::default()
    }
}

/// One mutating operation; objects are named by creation order (the
/// durable store assigns ids 1, 2, … deterministically).
#[derive(Debug, Clone)]
enum Op {
    Create(Vec<u8>),
    Append(u64, Vec<u8>),
    Insert(u64, u64, Vec<u8>),
    Delete(u64, u64, u64),
    Replace(u64, u64, Vec<u8>),
    Truncate(u64, u64),
    DeleteObj(u64),
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(salt))
        .collect()
}

/// The scripted workload: a handful of transaction scopes exercising
/// every §4 operation, sized to cross page and segment boundaries.
fn workload() -> Vec<Vec<Op>> {
    vec![
        // txn 1: two objects are born
        vec![
            Op::Create(pattern(3 * PAGE + 77, 1)),
            Op::Create(pattern(40, 2)),
        ],
        // txn 2: growth and a mid-object insert
        vec![
            Op::Append(1, pattern(2 * PAGE, 3)),
            Op::Insert(1, 700, pattern(300, 4)),
            Op::Append(2, pattern(PAGE + 13, 5)),
        ],
        // txn 3: in-place replaces, straddling a page boundary
        vec![
            Op::Replace(1, 100, pattern(64, 6)),
            Op::Replace(1, PAGE as u64 - 17, pattern(200, 7)),
            Op::Replace(2, 0, pattern(30, 8)),
        ],
        // txn 4: shrink from the middle and the end
        vec![
            Op::Delete(1, 400, 900),
            Op::Truncate(2, 300),
            Op::Replace(1, 0, pattern(128, 9)),
        ],
        // txn 5: one object dies, a third is born
        vec![Op::DeleteObj(2), Op::Create(pattern(2 * PAGE + 11, 10))],
        // txn 6: growth spurt on the newcomer, multi-segment appends
        vec![
            Op::Append(3, pattern(500, 11)),
            Op::Append(3, pattern(4 * PAGE, 12)),
            Op::Replace(1, 50, pattern(90, 13)),
        ],
        // txn 7: churn that forces reshuffling around segment seams
        vec![
            Op::Insert(3, PAGE as u64, pattern(700, 14)),
            Op::Delete(3, 200, 450),
            Op::Insert(1, 0, pattern(256, 15)),
            Op::Replace(3, 2 * PAGE as u64 + 5, pattern(300, 16)),
        ],
        // txn 8: a fourth object, then heavy in-place traffic
        vec![
            Op::Create(pattern(PAGE + 200, 17)),
            Op::Replace(4, 100, pattern(400, 18)),
            Op::Replace(4, 0, pattern(64, 19)),
            Op::Append(4, pattern(300, 20)),
        ],
        // txn 9: shrink everything back down
        vec![
            Op::Truncate(3, 900),
            Op::Delete(1, 500, 800),
            Op::Truncate(4, 256),
        ],
        // txn 10: final touches on every survivor
        vec![
            Op::Replace(1, 10, pattern(48, 21)),
            Op::Append(3, pattern(150, 22)),
            Op::Insert(4, 128, pattern(99, 23)),
        ],
    ]
}

/// Apply one op to the byte-level model.
fn model_apply(model: &mut BTreeMap<u64, Vec<u8>>, next_id: &mut u64, op: &Op) {
    match op {
        Op::Create(bytes) => {
            model.insert(*next_id, bytes.clone());
            *next_id += 1;
        }
        Op::Append(id, bytes) => model.get_mut(id).unwrap().extend_from_slice(bytes),
        Op::Insert(id, off, bytes) => {
            let v = model.get_mut(id).unwrap();
            v.splice(*off as usize..*off as usize, bytes.iter().copied());
        }
        Op::Delete(id, off, len) => {
            let v = model.get_mut(id).unwrap();
            v.drain(*off as usize..(*off + *len) as usize);
        }
        Op::Replace(id, off, bytes) => {
            let v = model.get_mut(id).unwrap();
            v[*off as usize..*off as usize + bytes.len()].copy_from_slice(bytes);
        }
        Op::Truncate(id, size) => model.get_mut(id).unwrap().truncate(*size as usize),
        Op::DeleteObj(id) => {
            model.remove(id);
        }
    }
}

/// Apply one op to the store. Handles map object id → live descriptor.
fn store_apply(
    store: &mut ObjectStore,
    handles: &mut BTreeMap<u64, LargeObject>,
    op: &Op,
) -> eos::core::Result<()> {
    match op {
        Op::Create(bytes) => {
            let obj = store.create_with(bytes, None)?;
            handles.insert(obj.id(), obj);
        }
        Op::Append(id, bytes) => {
            let obj = handles.get_mut(id).unwrap();
            store.append(obj, bytes)?;
        }
        Op::Insert(id, off, bytes) => {
            let obj = handles.get_mut(id).unwrap();
            store.insert(obj, *off, bytes)?;
        }
        Op::Delete(id, off, len) => {
            let obj = handles.get_mut(id).unwrap();
            store.delete(obj, *off, *len)?;
        }
        Op::Replace(id, off, bytes) => {
            let obj = handles.get_mut(id).unwrap();
            store.replace(obj, *off, bytes)?;
        }
        Op::Truncate(id, size) => {
            let obj = handles.get_mut(id).unwrap();
            store.truncate(obj, *size)?;
        }
        Op::DeleteObj(id) => {
            let mut obj = handles.remove(id).unwrap();
            store.delete_object(&mut obj)?;
        }
    }
    Ok(())
}

/// Where the crash error (if any) surfaced.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// Every transaction committed.
    Completed,
    /// Crash surfaced mid-operation or mid-abort: `n` txns committed,
    /// the in-flight one cannot have reached its commit record.
    CrashedInTxn(usize),
    /// Crash surfaced inside `commit_txn` of txn `n` (0-based): the
    /// commit record may or may not have become durable — limbo.
    CrashedInCommit(usize),
}

/// Run a scripted workload transaction by transaction.
fn run_ops(store: &mut ObjectStore, txns: &[Vec<Op>]) -> Outcome {
    let mut handles = BTreeMap::new();
    for (t, txn) in txns.iter().enumerate() {
        store.begin_txn();
        for op in txn {
            if store_apply(store, &mut handles, op).is_err() {
                return Outcome::CrashedInTxn(t);
            }
        }
        if store.commit_txn().is_err() {
            return Outcome::CrashedInCommit(t);
        }
    }
    Outcome::Completed
}

fn run_workload(store: &mut ObjectStore) -> Outcome {
    run_ops(store, &workload())
}

/// Model snapshots: `states[j]` = object id → bytes after `j` committed
/// transactions.
fn model_states_for(txns: &[Vec<Op>]) -> Vec<BTreeMap<u64, Vec<u8>>> {
    let mut states = vec![BTreeMap::new()];
    let mut model = BTreeMap::new();
    let mut next_id = 1u64;
    for txn in txns {
        for op in txn {
            model_apply(&mut model, &mut next_id, op);
        }
        states.push(model.clone());
    }
    states
}

fn model_states() -> Vec<BTreeMap<u64, Vec<u8>>> {
    model_states_for(&workload())
}

/// A fresh durable store on a crash-point gate over an in-memory
/// volume.
fn fresh_store_with(
    config: StoreConfig,
    wal_pages: u64,
    volume_pages: u64,
) -> (ObjectStore, Arc<CrashPointVolume>) {
    let mem = MemVolume::with_profile(PAGE, volume_pages, DiskProfile::FREE).shared();
    let gate = CrashPointVolume::new(mem);
    let vol: SharedVolume = gate.clone();
    let store = ObjectStore::create_durable(vol, SPACES, PPS, config, wal_pages).unwrap();
    (store, gate)
}

fn fresh_store() -> (ObjectStore, Arc<CrashPointVolume>) {
    fresh_store_with(StoreConfig::default(), WAL_PAGES, VOLUME_PAGES)
}

/// Recover the post-crash disk image and return (store, id → bytes).
fn recover_with(
    image: Vec<u8>,
    config: StoreConfig,
    wal_pages: u64,
) -> (ObjectStore, BTreeMap<u64, Vec<u8>>, Vec<LargeObject>) {
    let vol = MemVolume::from_bytes(PAGE, image, DiskProfile::FREE).shared();
    let (store, report) = ObjectStore::open_durable(vol, SPACES, PPS, config, wal_pages)
        .expect("recovery must succeed on any crash image");
    let mut bytes = BTreeMap::new();
    for obj in &report.objects {
        bytes.insert(obj.id(), store.read_all(obj).unwrap());
    }
    (store, bytes, report.objects)
}

fn recover(image: Vec<u8>) -> (ObjectStore, BTreeMap<u64, Vec<u8>>, Vec<LargeObject>) {
    recover_with(image, StoreConfig::default(), WAL_PAGES)
}

fn assert_checker_clean(store: &ObjectStore, objects: &[LargeObject], ctx: &str) {
    let named: Vec<(String, LargeObject)> = objects
        .iter()
        .map(|o| (format!("obj-{}", o.id()), o.clone()))
        .collect();
    let report = eos_check::check_store(store, &named, None);
    assert!(
        report.is_clean(),
        "{ctx}: eos-check found problems:\n{}",
        report.render_table()
    );
}

#[test]
fn crash_sweep_every_io_point() {
    let states = model_states();

    // Baseline run, unarmed: count the workload's I/O points and sanity
    // check the final state.
    let (mut store, gate) = fresh_store();
    gate.arm(u64::MAX, false); // counting only; u64::MAX never fires
    assert_eq!(run_workload(&mut store), Outcome::Completed);
    let total_writes = gate.writes_seen();
    drop(store);
    println!(
        "crash sweep: {total_writes} I/O points, clean + torn = {} scenarios",
        2 * total_writes
    );
    assert!(
        total_writes >= 100,
        "workload too small for a meaningful sweep: {total_writes} writes"
    );
    let (_, final_bytes, _) = recover(gate.image().unwrap());
    assert_eq!(
        &final_bytes,
        states.last().unwrap(),
        "unarmed run end state"
    );

    for torn in [false, true] {
        for k in 0..total_writes {
            let (mut store, gate) = fresh_store();
            gate.arm(k, torn);
            let outcome = run_workload(&mut store);
            drop(store);
            assert!(
                gate.has_crashed(),
                "k={k} torn={torn}: the armed crash never fired"
            );
            let (rstore, recovered, objects) = recover(gate.image().unwrap());

            let committed = match outcome {
                Outcome::Completed => {
                    panic!("k={k} torn={torn}: workload completed despite the crash")
                }
                Outcome::CrashedInTxn(n) | Outcome::CrashedInCommit(n) => n,
            };
            let limbo_ok = matches!(outcome, Outcome::CrashedInCommit(_))
                && recovered == states[committed + 1];
            assert!(
                recovered == states[committed] || limbo_ok,
                "k={k} torn={torn}: recovered state matches neither the \
                 {committed}-txn prefix nor (in commit limbo) the next one.\n\
                 recovered ids: {:?}\nexpected ids: {:?}",
                recovered.keys().collect::<Vec<_>>(),
                states[committed].keys().collect::<Vec<_>>(),
            );
            assert_checker_clean(&rstore, &objects, &format!("k={k} torn={torn}"));
        }
    }
}

// ---- Striped-WAL crash sweep (DESIGN.md §17, FORMAT.md §Striped WAL) -------

/// The striped workload: objects hash onto stripes by id (`id % 2`), so
/// object 1 and 3 log on stripe 1, object 2 on stripe 0. The scopes are
/// chosen to cover every cross-stripe shape the commit pipeline has:
///
/// * single-stripe commits landing on each stripe *alternately*, so both
///   stripes carry non-contiguous global LSNs and recovery must merge
///   them by LSN, not by position;
/// * cross-stripe commits (two `participants` parts, one per stripe)
///   whose crash window between the part appends must presume abort;
/// * a cross-stripe delete-object + create, the tombstone part and the
///   birth part on different stripes.
fn striped_workload() -> Vec<Vec<Op>> {
    vec![
        // txn 1: objects 1 (stripe 1) and 2 (stripe 0) born together —
        // a two-participant commit from the very first scope.
        vec![
            Op::Create(pattern(2 * PAGE + 100, 41)),
            Op::Create(pattern(PAGE + 40, 42)),
        ],
        // txn 2: stripe-1 solo commit.
        vec![
            Op::Append(1, pattern(PAGE + 33, 43)),
            Op::Insert(1, 300, pattern(150, 44)),
        ],
        // txn 3: stripe-0 solo commit — stripe 0's log now skips the
        // LSNs txn 2 burned on stripe 1.
        vec![
            Op::Replace(2, 64, pattern(200, 45)),
            Op::Append(2, pattern(PAGE, 46)),
        ],
        // txn 4: back to both stripes, shrink + splice in one scope.
        vec![Op::Delete(1, 200, 500), Op::Truncate(2, 700)],
        // txn 5: object 2 dies on stripe 0 while object 3 is born on
        // stripe 1 — the tombstone and the birth are separate parts of
        // one commit.
        vec![Op::DeleteObj(2), Op::Create(pattern(PAGE + 77, 47))],
        // txn 6: growth spurt on the newcomer — multi-page appends keep
        // stripe 1's log busy while stripe 0 sits idle.
        vec![
            Op::Append(3, pattern(3 * PAGE, 48)),
            Op::Replace(1, 10, pattern(90, 49)),
        ],
        // txn 7: a fourth object (stripe 0) revives cross-stripe
        // traffic after the stripe had gone quiet.
        vec![
            Op::Create(pattern(2 * PAGE + 31, 50)),
            Op::Insert(3, PAGE as u64, pattern(250, 51)),
        ],
        // txn 8: stripe-0 solo, then a final cross-stripe shrink.
        vec![
            Op::Replace(4, 0, pattern(300, 52)),
            Op::Append(4, pattern(PAGE / 2, 53)),
        ],
        vec![Op::Truncate(3, 600), Op::Delete(4, 100, 350)],
    ]
}

/// Tentpole satellite: crash at every write I/O point of a two-stripe
/// log whose commits force the stripes together — part appends, the
/// per-stripe commit barriers, and the data-page traffic in between —
/// for clean and torn final writes. Recovery must merge the stripes by
/// global LSN, presume abort on any incomplete cross-stripe part set,
/// and land every image on a committed prefix (or the §4.5 limbo
/// successor) with `eos-check` clean.
#[test]
fn crash_sweep_striped_wal_two_stripes() {
    let txns = striped_workload();
    let states = model_states_for(&txns);

    // Unarmed counting run.
    let (mut store, gate) =
        fresh_store_with(striped_config(), STRIPED_WAL_PAGES, STRIPED_VOLUME_PAGES);
    gate.arm(u64::MAX, false);
    assert_eq!(run_ops(&mut store, &txns), Outcome::Completed);
    let total_writes = gate.writes_seen();
    drop(store);
    println!("striped crash sweep: {total_writes} I/O points across 2 stripes, clean + torn");
    assert!(
        total_writes >= 60,
        "striped workload too small for a meaningful sweep: {total_writes} writes"
    );
    let (_, final_bytes, _) =
        recover_with(gate.image().unwrap(), striped_config(), STRIPED_WAL_PAGES);
    assert_eq!(&final_bytes, states.last().unwrap(), "unarmed end state");

    for torn in [false, true] {
        for k in 0..total_writes {
            let (mut store, gate) =
                fresh_store_with(striped_config(), STRIPED_WAL_PAGES, STRIPED_VOLUME_PAGES);
            gate.arm(k, torn);
            let outcome = run_ops(&mut store, &txns);
            drop(store);
            assert!(
                gate.has_crashed(),
                "striped k={k} torn={torn}: the armed crash never fired"
            );
            let (rstore, recovered, objects) =
                recover_with(gate.image().unwrap(), striped_config(), STRIPED_WAL_PAGES);

            let committed = match outcome {
                Outcome::Completed => {
                    panic!("striped k={k} torn={torn}: workload completed despite the crash")
                }
                Outcome::CrashedInTxn(n) | Outcome::CrashedInCommit(n) => n,
            };
            // In commit limbo a cross-stripe scope has one extra legal
            // outcome the single-log sweep never sees: all parts durable
            // → present (states[committed + 1]); any part missing →
            // presumed abort → absent (states[committed]). Both reduce
            // to the same prefix-or-successor assertion.
            let limbo_ok = matches!(outcome, Outcome::CrashedInCommit(_))
                && recovered == states[committed + 1];
            assert!(
                recovered == states[committed] || limbo_ok,
                "striped k={k} torn={torn}: recovered state matches neither the \
                 {committed}-txn prefix nor (in commit limbo) the next one.\n\
                 recovered ids: {:?}\nexpected ids: {:?}",
                recovered.keys().collect::<Vec<_>>(),
                states[committed].keys().collect::<Vec<_>>(),
            );
            assert_checker_clean(&rstore, &objects, &format!("striped k={k} torn={torn}"));
        }
    }
}

// ---- MVCC publication/reclaim crash sweep (DESIGN.md §14) ------------------

/// The MVCC workload, replayed transaction by transaction through the
/// concurrent front-end: commits publish roots while snapshots pin
/// epochs (parking the deferred frees), and snapshot drops run the
/// reclaim I/O. Returns how many transactions committed and whether
/// the failure surfaced inside a commit (the limbo window).
fn run_mvcc_workload(cs: &ConcurrentStore) -> Outcome {
    let mut committed = 0usize;

    // txn 1: two objects are born.
    let txn = cs.begin();
    let mut a = match txn.create(&pattern(3 * PAGE + 50, 31), None) {
        Ok(o) => o,
        Err(_) => return Outcome::CrashedInTxn(committed),
    };
    let mut b = match txn.create(&pattern(PAGE + 30, 32), None) {
        Ok(o) => o,
        Err(_) => return Outcome::CrashedInTxn(committed),
    };
    if txn.commit().is_err() {
        return Outcome::CrashedInCommit(committed);
    }
    committed += 1;

    // A stalled reader pins the two-object epoch: every free below
    // parks behind it until the drop.
    let pin = cs.snapshot();

    // txn 2: copy-on-write replace + growth — all frees parked.
    let txn = cs.begin();
    if txn.replace(&mut a, 100, &pattern(400, 33)).is_err()
        || txn.append(&mut b, &pattern(600, 34)).is_err()
    {
        return Outcome::CrashedInTxn(committed);
    }
    if txn.commit().is_err() {
        return Outcome::CrashedInCommit(committed);
    }
    committed += 1;

    // txn 3: shrink + splice, still pinned.
    let txn = cs.begin();
    if txn.delete(&mut a, 300, 700).is_err() || txn.insert(&mut b, 64, &pattern(200, 35)).is_err() {
        return Outcome::CrashedInTxn(committed);
    }
    if txn.commit().is_err() {
        return Outcome::CrashedInCommit(committed);
    }
    committed += 1;

    // Reclaim I/O point: dropping the pin applies every parked batch
    // (directory-page writes). A crash in here is swallowed by the
    // drop — the next transaction surfaces it.
    drop(pin);

    // txn 4 under a second pin: one object dies (tombstone publish).
    let pin = cs.snapshot();
    let txn = cs.begin();
    if txn.replace(&mut a, 0, &pattern(128, 36)).is_err() || txn.delete_object(&mut b).is_err() {
        return Outcome::CrashedInTxn(committed);
    }
    if txn.commit().is_err() {
        return Outcome::CrashedInCommit(committed);
    }
    committed += 1;
    drop(pin);

    // txn 5: final touch with no reader pinned — frees apply inline.
    let txn = cs.begin();
    if txn.truncate(&mut a, 800).is_err() {
        return Outcome::CrashedInTxn(committed);
    }
    if txn.commit().is_err() {
        return Outcome::CrashedInCommit(committed);
    }

    Outcome::Completed
}

/// `states[j]` = object id → bytes after `j` committed MVCC txns.
fn mvcc_model_states() -> Vec<BTreeMap<u64, Vec<u8>>> {
    let mut states = vec![BTreeMap::new()];
    let mut a = pattern(3 * PAGE + 50, 31);
    let mut b = pattern(PAGE + 30, 32);
    states.push(BTreeMap::from([(1, a.clone()), (2, b.clone())]));
    a[100..500].copy_from_slice(&pattern(400, 33));
    b.extend(pattern(600, 34));
    states.push(BTreeMap::from([(1, a.clone()), (2, b.clone())]));
    a.drain(300..1000);
    b.splice(64..64, pattern(200, 35));
    states.push(BTreeMap::from([(1, a.clone()), (2, b.clone())]));
    a[..128].copy_from_slice(&pattern(128, 36));
    states.push(BTreeMap::from([(1, a.clone())]));
    a.truncate(800);
    states.push(BTreeMap::from([(1, a.clone())]));
    states
}

/// Satellite: crash at every write I/O point of the MVCC commit path —
/// root publication, deferred-free parking, and the reclaim that runs
/// when the last pin drops. Every image must recover to a committed
/// prefix (or the §4.5 limbo successor) with `eos-check` clean: a
/// parked batch lost in the crash must come back as *free* pages, not
/// as leaks.
#[test]
fn crash_sweep_mvcc_publish_and_reclaim() {
    let states = mvcc_model_states();

    // Unarmed counting run.
    let (store, gate) = fresh_store();
    gate.arm(u64::MAX, false);
    let cs = ConcurrentStore::new(store);
    assert_eq!(run_mvcc_workload(&cs), Outcome::Completed);
    drop(cs);
    let total_writes = gate.writes_seen();
    println!("mvcc crash sweep: {total_writes} I/O points, clean + torn");
    assert!(
        total_writes >= 40,
        "MVCC workload too small for a meaningful sweep: {total_writes} writes"
    );
    let (_, final_bytes, _) = recover(gate.image().unwrap());
    assert_eq!(&final_bytes, states.last().unwrap(), "unarmed end state");

    for torn in [false, true] {
        for k in 0..total_writes {
            let (store, gate) = fresh_store();
            gate.arm(k, torn);
            let cs = ConcurrentStore::new(store);
            let outcome = run_mvcc_workload(&cs);
            drop(cs);
            assert!(
                gate.has_crashed(),
                "mvcc k={k} torn={torn}: the armed crash never fired"
            );
            let (rstore, recovered, objects) = recover(gate.image().unwrap());

            let committed = match outcome {
                Outcome::Completed => {
                    panic!("mvcc k={k} torn={torn}: workload completed despite the crash")
                }
                Outcome::CrashedInTxn(n) | Outcome::CrashedInCommit(n) => n,
            };
            let limbo_ok = matches!(outcome, Outcome::CrashedInCommit(_))
                && recovered == states[committed + 1];
            assert!(
                recovered == states[committed] || limbo_ok,
                "mvcc k={k} torn={torn}: recovered state matches neither the \
                 {committed}-txn prefix nor (in commit limbo) the next one.\n\
                 recovered ids: {:?}\nexpected ids: {:?}",
                recovered.keys().collect::<Vec<_>>(),
                states[committed].keys().collect::<Vec<_>>(),
            );
            assert_checker_clean(&rstore, &objects, &format!("mvcc k={k} torn={torn}"));
        }
    }
}

/// Recovery is idempotent even when the power dies again *during*
/// recovery: crash the recovery run itself at every one of its own I/O
/// points, then recover from that second-generation image.
#[test]
fn crash_sweep_double_crash_during_recovery() {
    // First-generation crash image: power loss mid-way through txn 3
    // (the replace transaction — the one with undo work to redo).
    let (mut store, gate) = fresh_store();
    gate.arm(u64::MAX, false);
    let mut handles = BTreeMap::new();
    let txns = workload();
    for txn in txns.iter().take(3) {
        store.begin_txn();
        for op in txn {
            store_apply(&mut store, &mut handles, op).unwrap();
        }
        store.commit_txn().unwrap();
    }
    // Open scope, never committed: pending replace images in the log.
    store.begin_txn();
    for op in &txns[3] {
        store_apply(&mut store, &mut handles, op).unwrap();
    }
    drop(store);
    let image = gate.image().unwrap();

    // Count recovery's own writes.
    let mem = MemVolume::from_bytes(PAGE, image.clone(), DiskProfile::FREE).shared();
    let gate = CrashPointVolume::new(mem);
    gate.arm(u64::MAX, false);
    let v: SharedVolume = gate.clone();
    let (_s, _r) =
        ObjectStore::open_durable(v, SPACES, PPS, StoreConfig::default(), WAL_PAGES).unwrap();
    let recovery_writes = gate.writes_seen();
    assert!(recovery_writes > 0);
    println!("double-crash sweep: {recovery_writes} I/O points inside recovery");

    let states = model_states();
    for torn in [false, true] {
        for k in 0..recovery_writes {
            let mem = MemVolume::from_bytes(PAGE, image.clone(), DiskProfile::FREE).shared();
            let gate = CrashPointVolume::new(mem);
            gate.arm(k, torn);
            let v: SharedVolume = gate.clone();
            let crashed =
                ObjectStore::open_durable(v, SPACES, PPS, StoreConfig::default(), WAL_PAGES);
            assert!(
                crashed.is_err(),
                "k={k} torn={torn}: recovery finished despite the crash"
            );
            let (rstore, recovered, objects) = recover(gate.image().unwrap());
            assert_eq!(
                recovered, states[3],
                "k={k} torn={torn}: second recovery must land on the 3-txn prefix"
            );
            assert_checker_clean(
                &rstore,
                &objects,
                &format!("double-crash k={k} torn={torn}"),
            );
        }
    }
}
