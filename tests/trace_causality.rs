//! Cross-thread causality for the `eos-trace` pipeline timeline
//! (DESIGN.md §16): a seeded multi-writer group-commit run must leave a
//! ring of events whose structure reconstructs the batches exactly.
//!
//! Pinned properties:
//!
//! 1. **Linkage** — every commit's `commit.queue_wait` end event names
//!    a batch that a leader actually flushed (its id appears on a
//!    `commit` begin/end pair), so follower timelines join the leader's.
//! 2. **Nesting & contiguity** — per batch, the Phase A–D spans sit
//!    inside the `commit` span, share boundary timestamps (A ends where
//!    B begins, …), and sum *exactly* to the commit's wall time.
//! 3. **Reconciliation** — the per-phase wall histograms record one
//!    sample per batch and the queue-wait histogram one per commit, so
//!    the aggregate view and the event view describe the same run.
//! 4. **Export** — the Chrome `trace_event` conversion of the ring
//!    parses with the in-tree JSON parser and keeps every event.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use eos::core::{ConcurrentStore, ObjectStore, StoreConfig};
use eos::obs::{chrome_trace_json, Metrics, PipeEvent, PipeKind, PIN_TRACE_BIT};
use eos::pager::{DiskProfile, MemVolume, SharedVolume, ThrottledVolume};

const WRITERS: u64 = 4;
const ROUNDS: u64 = 8;

fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 251) as u8))
        .collect()
}

/// A durable store on a throttled in-memory volume with its own metrics
/// domain. The throttle stretches the log force, so racing commits pile
/// up behind the leader and real multi-member batches form.
fn traced_store(metrics: &Metrics) -> ObjectStore {
    let inner: SharedVolume =
        MemVolume::with_profile(1024, (1024 + 1) * 4 + 62, DiskProfile::FREE).shared();
    let volume: SharedVolume = Arc::new(ThrottledVolume::new(inner, Duration::from_micros(100)));
    let mut store = ObjectStore::create_durable(
        volume,
        4,
        1024,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        62,
    )
    .unwrap();
    store.set_metrics(metrics);
    store
}

fn kinds(events: &[PipeEvent], phase: &str, kind: PipeKind) -> Vec<PipeEvent> {
    events
        .iter()
        .filter(|e| e.phase == phase && e.kind == kind)
        .cloned()
        .collect()
}

#[test]
fn group_commit_events_link_followers_to_the_leader_batch() {
    let metrics = Metrics::new();
    let store = traced_store(&metrics);
    let cs = ConcurrentStore::new(store);

    // Each writer creates its object, then all four race ROUNDS of
    // replace-commits through a barrier so every round's commits hit
    // the group queue together.
    let gate = Arc::new(Barrier::new(WRITERS as usize));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let cs = cs.clone();
        let gate = Arc::clone(&gate);
        handles.push(std::thread::spawn(move || {
            let txn = cs.begin();
            let mut obj = txn.create(&pattern(w as u8, 8_000), None).unwrap();
            txn.commit().unwrap();
            for i in 0..ROUNDS {
                gate.wait();
                let txn = cs.begin();
                txn.replace(&mut obj, (i * 731) % 4_000, &pattern((w + i) as u8, 2_000))
                    .unwrap();
                txn.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let events = metrics.pipe_events();
    assert_eq!(
        metrics.pipe_recorded(),
        events.len() as u64,
        "the run must fit the ring — grow DEFAULT_PIPE_CAPACITY if this fires"
    );

    // -- 1. Linkage: every retired commit names a flushed batch. -----
    let commit_begins = kinds(&events, "commit", PipeKind::Begin);
    let commit_ends = kinds(&events, "commit", PipeKind::End);
    let batch_ids: std::collections::BTreeSet<u64> =
        commit_begins.iter().map(|e| e.batch_id).collect();
    let waits = kinds(&events, "commit.queue_wait", PipeKind::End);
    let total_commits = (WRITERS * (ROUNDS + 1)) as usize;
    assert_eq!(waits.len(), total_commits, "one queue-wait end per commit");
    for w in &waits {
        assert!(w.batch_id > 0, "retired commit with no batch id: {w:?}");
        assert!(
            batch_ids.contains(&w.batch_id),
            "txn {} retired under batch {} that no leader flushed",
            w.trace_id,
            w.batch_id
        );
    }
    // Grouping actually happened: fewer batches than commits means at
    // least one leader carried followers.
    assert_eq!(commit_begins.len(), commit_ends.len());
    assert!(
        batch_ids.len() < total_commits,
        "no multi-member batch formed in {total_commits} racing commits"
    );

    // -- 2. Nesting and contiguity per batch. ------------------------
    let phases = [
        "commit.phase_a",
        "commit.phase_b",
        "commit.phase_c",
        "commit.phase_d",
    ];
    for b in &commit_begins {
        let e = commit_ends
            .iter()
            .find(|e| e.batch_id == b.batch_id)
            .unwrap_or_else(|| panic!("batch {} has no commit end", b.batch_id));
        assert_eq!(e.trace_id, b.trace_id, "leader changed mid-batch");
        assert_eq!(e.thread, b.thread, "commit span crossed threads");
        let mut cursor = b.ts_ns;
        let mut phase_sum = 0u64;
        for p in phases {
            let pb = kinds(&events, p, PipeKind::Begin)
                .into_iter()
                .find(|x| x.batch_id == b.batch_id)
                .unwrap_or_else(|| panic!("batch {} missing {p} begin", b.batch_id));
            let pe = kinds(&events, p, PipeKind::End)
                .into_iter()
                .find(|x| x.batch_id == b.batch_id)
                .unwrap_or_else(|| panic!("batch {} missing {p} end", b.batch_id));
            assert_eq!(pb.trace_id, b.trace_id, "{p} not on the leader's timeline");
            assert_eq!(pb.ts_ns, cursor, "{p} does not start where the last ended");
            assert!(pe.ts_ns >= pb.ts_ns);
            phase_sum += pe.ts_ns - pb.ts_ns;
            cursor = pe.ts_ns;
        }
        assert_eq!(cursor, e.ts_ns, "phase D does not end at the commit end");
        assert_eq!(
            phase_sum,
            e.ts_ns - b.ts_ns,
            "phases do not sum to the commit wall time"
        );
    }

    // MVCC pin events live in their own trace-id namespace.
    for e in &events {
        if e.phase.starts_with("mvcc.") {
            assert!(
                e.trace_id & PIN_TRACE_BIT != 0,
                "mvcc event without PIN_TRACE_BIT: {e:?}"
            );
        }
    }

    // -- 3. Histograms reconcile with the event view. ----------------
    let snap = metrics.snapshot();
    for (i, p) in phases.iter().enumerate() {
        let h = snap
            .histogram(&format!("commit.phase_{}.wall_us", ["a", "b", "c", "d"][i]))
            .unwrap_or_else(|| panic!("no histogram for {p}"));
        assert_eq!(
            h.count,
            batch_ids.len() as u64,
            "{p} histogram samples != flushed batches"
        );
    }
    let qw = snap.histogram("commit.queue_wait_us").unwrap();
    assert_eq!(qw.count, total_commits as u64);

    // -- 4. The Chrome export round-trips through the house parser. --
    let chrome = chrome_trace_json(&events);
    let doc = eos_check::schema::parse(&chrome).expect("chrome export must parse");
    let n = doc
        .get("traceEvents")
        .and_then(eos_check::Json::as_array)
        .map_or(0, <[eos_check::Json]>::len);
    assert_eq!(n, events.len(), "export dropped events");

    drop(cs);
}
