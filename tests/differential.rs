//! Model-based differential testing (PR 2, satellite).
//!
//! One random operation sequence is *concretized* once against a plain
//! `Vec<u8>` reference model (offsets clamped, payloads fixed) and then
//! replayed verbatim against every store under test, so each store sees
//! byte-identical operations. After **every** operation each store's
//! full contents must equal the model byte for byte.
//!
//! Stores compared:
//!
//! * EOS [`ObjectStore`] — the full surface, including `truncate`,
//!   `compact` and `consolidate`, which the baselines lack.
//! * The §2 baselines (Exodus, Starburst, WiSS, System R) on the ops
//!   each one supports — System R has no insert/delete, WiSS caps
//!   object size at one directory page of slices.
//! * A **durable** EOS store (on-disk WAL, autocommitted ops) against a
//!   volatile one: the logging fast paths must not change a single
//!   byte, and the contents must survive a reopen-with-recovery.

use eos::baselines::{ExodusStore, StarburstStore, SystemRStore, WissStore};
use eos::core::{BlobStore, ConcurrentStore, LargeObject, ObjectStore, Snapshot, StoreConfig, Txn};
use eos::pager::{DiskProfile, MemVolume, SharedVolume};
use proptest::prelude::*;

/// Default case count, overridable via PROPTEST_CASES for deep soaks.
fn prop_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24)
}

/// A raw, unclamped operation as drawn from the strategy.
#[derive(Debug, Clone)]
enum Op {
    Append { len: usize },
    Insert { at: u64, len: usize },
    Delete { at: u64, len: u64 },
    Replace { at: u64, len: usize },
    Truncate { to: u64 },
    Read { at: u64, len: u64 },
    Compact,
    Consolidate,
}

/// The same operation with offsets clamped against the model size and
/// the payload materialized — every store replays exactly this.
#[derive(Debug, Clone)]
enum Cop {
    Append(Vec<u8>),
    Insert(u64, Vec<u8>),
    Delete(u64, u64),
    Replace(u64, Vec<u8>),
    Truncate(u64),
    Read(u64, u64),
    Compact,
    Consolidate,
}

fn fill(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 251) as u8))
        .collect()
}

/// Clamp a raw op against the current model size; `None` means the op
/// degenerates to a no-op (e.g. delete from an empty object) or would
/// push the object past `cap` bytes.
fn concretize(op: &Op, size: u64, seed: u8, cap: usize) -> Option<Cop> {
    match *op {
        Op::Append { len } => (size as usize + len <= cap).then(|| Cop::Append(fill(seed, len))),
        Op::Insert { at, len } => {
            if size as usize + len > cap {
                return None;
            }
            let at = if size == 0 { 0 } else { at % (size + 1) };
            Some(Cop::Insert(at, fill(seed.wrapping_add(7), len)))
        }
        Op::Delete { at, len } => {
            if size == 0 {
                return None;
            }
            let at = at % size;
            let len = len.min(size - at);
            (len > 0).then_some(Cop::Delete(at, len))
        }
        Op::Replace { at, len } => {
            if size == 0 {
                return None;
            }
            let at = at % size;
            let len = (len as u64).min(size - at) as usize;
            Some(Cop::Replace(at, fill(seed.wrapping_add(31), len)))
        }
        Op::Truncate { to } => Some(Cop::Truncate(to % (size + 1))),
        Op::Read { at, len } => {
            if size == 0 {
                return None;
            }
            let at = at % size;
            Some(Cop::Read(at, len.min(size - at)))
        }
        Op::Compact => Some(Cop::Compact),
        Op::Consolidate => Some(Cop::Consolidate),
    }
}

fn model_apply(model: &mut Vec<u8>, c: &Cop) {
    match c {
        Cop::Append(data) => model.extend_from_slice(data),
        Cop::Insert(at, data) => {
            model.splice(*at as usize..*at as usize, data.iter().copied());
        }
        Cop::Delete(at, len) => {
            model.drain(*at as usize..(*at + *len) as usize);
        }
        Cop::Replace(at, data) => {
            model[*at as usize..*at as usize + data.len()].copy_from_slice(data);
        }
        Cop::Truncate(to) => model.truncate(*to as usize),
        Cop::Read(..) | Cop::Compact | Cop::Consolidate => {}
    }
}

/// Replay one concrete op on a baseline through the [`BlobStore`]
/// trait. Reads are differential too: the slice must match the model.
fn blob_apply<S: BlobStore>(store: &mut S, h: &mut S::Handle, c: &Cop, model: &[u8]) {
    match c {
        Cop::Append(data) => store.append(h, data).unwrap(),
        Cop::Insert(at, data) => store.insert(h, *at, data).unwrap(),
        Cop::Delete(at, len) => store.delete(h, *at, *len).unwrap(),
        Cop::Replace(at, data) => store.replace(h, *at, data).unwrap(),
        Cop::Read(at, len) => assert_eq!(
            store.read(h, *at, *len).unwrap(),
            &model[*at as usize..(*at + *len) as usize]
        ),
        Cop::Truncate(_) | Cop::Compact | Cop::Consolidate => {
            unreachable!("not in the shared op set")
        }
    }
    assert_eq!(store.size(h), model.len() as u64, "{} size", store.name());
    assert_eq!(
        store.read(h, 0, model.len() as u64).unwrap(),
        model,
        "{} content",
        store.name()
    );
}

/// Replay one concrete op on an EOS store through its native API.
fn eos_apply(store: &mut ObjectStore, obj: &mut LargeObject, c: &Cop, model: &[u8]) {
    match c {
        Cop::Append(data) => store.append(obj, data).unwrap(),
        Cop::Insert(at, data) => store.insert(obj, *at, data).unwrap(),
        Cop::Delete(at, len) => store.delete(obj, *at, *len).unwrap(),
        Cop::Replace(at, data) => store.replace(obj, *at, data).unwrap(),
        Cop::Truncate(to) => store.truncate(obj, *to).unwrap(),
        Cop::Read(at, len) => assert_eq!(
            store.read(obj, *at, *len).unwrap(),
            &model[*at as usize..(*at + *len) as usize]
        ),
        Cop::Compact => {
            store.compact(obj).unwrap();
        }
        Cop::Consolidate => {
            store.consolidate(obj).unwrap();
        }
    }
    assert_eq!(obj.size(), model.len() as u64, "eos size");
    assert_eq!(store.read_all(obj).unwrap(), model, "eos content");
}

/// Ops every page-based baseline supports (no truncate/compact).
fn shared_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..1_200).prop_map(|len| Op::Append { len }),
            3 => (any::<u64>(), 0usize..900).prop_map(|(at, len)| Op::Insert { at, len }),
            3 => (any::<u64>(), any::<u64>())
                .prop_map(|(at, len)| Op::Delete { at, len: len % 2_000 }),
            2 => (any::<u64>(), 0usize..700).prop_map(|(at, len)| Op::Replace { at, len }),
            2 => (any::<u64>(), any::<u64>())
                .prop_map(|(at, len)| Op::Read { at, len: len % 1_500 }),
        ],
        1..35,
    )
}

/// The sequential subset System R supports.
fn sequential_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..1_200).prop_map(|len| Op::Append { len }),
            2 => (any::<u64>(), 0usize..700).prop_map(|(at, len)| Op::Replace { at, len }),
            2 => (any::<u64>(), any::<u64>())
                .prop_map(|(at, len)| Op::Read { at, len: len % 1_500 }),
        ],
        1..35,
    )
}

/// The full EOS surface, including ops the baselines lack.
fn full_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..1_200).prop_map(|len| Op::Append { len }),
            3 => (any::<u64>(), 0usize..900).prop_map(|(at, len)| Op::Insert { at, len }),
            3 => (any::<u64>(), any::<u64>())
                .prop_map(|(at, len)| Op::Delete { at, len: len % 2_000 }),
            2 => (any::<u64>(), 0usize..700).prop_map(|(at, len)| Op::Replace { at, len }),
            1 => any::<u64>().prop_map(|to| Op::Truncate { to }),
            2 => (any::<u64>(), any::<u64>())
                .prop_map(|(at, len)| Op::Read { at, len: len % 1_500 }),
            1 => Just(Op::Compact),
            1 => Just(Op::Consolidate),
        ],
        1..35,
    )
}

fn baseline_vol() -> SharedVolume {
    MemVolume::with_profile(256, 4 * 902 + 2, DiskProfile::FREE).shared()
}

/// Drive EOS plus a set of baselines through one sequence; every store
/// must track the model after every op.
fn run_against<S: BlobStore>(ops: &[Op], mut baselines: Vec<S>, cap: usize) {
    let mut model: Vec<u8> = Vec::new();
    let mut eos = ObjectStore::in_memory(1024, 2000);
    let mut obj = eos.create_with(&[], None).unwrap();
    let mut handles: Vec<S::Handle> = baselines
        .iter_mut()
        .map(|s| s.create(&[], false).unwrap())
        .collect();
    for (i, op) in ops.iter().enumerate() {
        let Some(c) = concretize(op, model.len() as u64, i as u8, cap) else {
            continue;
        };
        model_apply(&mut model, &c);
        eos_apply(&mut eos, &mut obj, &c, &model);
        for (s, h) in baselines.iter_mut().zip(handles.iter_mut()) {
            blob_apply(s, h, &c, &model);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: prop_cases(), ..ProptestConfig::default() })]

    /// EOS vs Exodus (1- and 4-page leaves) vs Starburst on the op set
    /// all of them support.
    #[test]
    fn eos_and_page_baselines_agree(ops in shared_ops()) {
        run_against(
            &ops,
            vec![
                ExodusStore::create(baseline_vol(), 4, 901, 1).unwrap(),
                ExodusStore::create(baseline_vol(), 4, 901, 4).unwrap(),
            ],
            30_000,
        );
        run_against(
            &ops,
            vec![StarburstStore::create(baseline_vol(), 4, 901).unwrap()],
            30_000,
        );
    }

    /// EOS vs WiSS; WiSS caps at one directory page of 256-byte slices
    /// on this geometry, so keep the object small.
    #[test]
    fn eos_and_wiss_agree(ops in shared_ops()) {
        run_against(
            &ops,
            vec![WissStore::create(baseline_vol(), 4, 901).unwrap()],
            4_000,
        );
    }

    /// EOS vs System R on the sequential subset (no insert/delete).
    #[test]
    fn eos_and_systemr_agree(ops in sequential_ops()) {
        run_against(
            &ops,
            vec![SystemRStore::create(baseline_vol(), 4, 901).unwrap()],
            30_000,
        );
    }

    /// The full EOS surface against the model, ending with a static
    /// consistency check: no run may leak or double-claim a page.
    #[test]
    fn eos_full_surface_matches_model(ops in full_ops()) {
        let mut model: Vec<u8> = Vec::new();
        let mut eos = ObjectStore::in_memory(1024, 2000);
        let mut obj = eos.create_with(&[], None).unwrap();
        for (i, op) in ops.iter().enumerate() {
            let Some(c) = concretize(op, model.len() as u64, i as u8, 30_000) else {
                continue;
            };
            model_apply(&mut model, &c);
            eos_apply(&mut eos, &mut obj, &c, &model);
        }
        let named = vec![("obj".to_string(), obj.clone())];
        let report = eos_check::check_store(&eos, &named, None);
        prop_assert!(report.is_clean(), "{}", report.render_table());
    }

    /// A durable (on-disk WAL, autocommit) store must produce the same
    /// bytes as a volatile one for every op, and the final contents
    /// must survive a close + reopen-with-recovery.
    #[test]
    fn durable_store_matches_volatile(ops in full_ops()) {
        const SPACES: usize = 2;
        const PPS: u64 = 126;
        const WAL_PAGES: u64 = 66;
        let volume =
            MemVolume::with_profile(512, (PPS + 1) * SPACES as u64 + WAL_PAGES, DiskProfile::FREE)
                .shared();
        let mut durable = ObjectStore::create_durable(
            volume.clone(),
            SPACES,
            PPS,
            StoreConfig::default(),
            WAL_PAGES,
        )
        .unwrap();
        let mut volatile = ObjectStore::in_memory(512, PPS * SPACES as u64);
        let mut model: Vec<u8> = Vec::new();
        let mut dobj = durable.create_with(&[], None).unwrap();
        let mut vobj = volatile.create_with(&[], None).unwrap();
        for (i, op) in ops.iter().enumerate() {
            let Some(c) = concretize(op, model.len() as u64, i as u8, 12_000) else {
                continue;
            };
            model_apply(&mut model, &c);
            eos_apply(&mut volatile, &mut vobj, &c, &model);
            eos_apply(&mut durable, &mut dobj, &c, &model);
        }
        let id = dobj.id();
        drop(durable);
        let (reopened, report) =
            ObjectStore::open_durable(volume, SPACES, PPS, StoreConfig::default(), WAL_PAGES)
                .unwrap();
        prop_assert_eq!(report.rolled_back_ops, 0);
        let desc = report
            .objects
            .iter()
            .find(|o| o.id() == id)
            .expect("object survived reopen");
        prop_assert_eq!(reopened.read_all(desc).unwrap(), model);
    }
}

// ---- snapshot isolation (MVCC, DESIGN.md §14) ------------------------------

/// One step of the snapshot-isolation script.
#[derive(Debug, Clone)]
enum SnapAct {
    /// Run a writer transaction over object `obj % 2` (committed or
    /// aborted), checking mid-transaction that no snapshot can see the
    /// uncommitted writes.
    Txn {
        obj: usize,
        ops: Vec<Op>,
        commit: bool,
    },
    /// Pin a reader snapshot, remembering the model at the pin point.
    Pin,
    /// Replay every object through pinned reader `r` (mod live pins):
    /// the view must be byte-equal to the model *at its pin point*.
    ReadPinned { r: usize },
    /// Drop pinned reader `r` (mod live pins), releasing its epoch.
    DropPin { r: usize },
}

fn snap_acts() -> impl Strategy<Value = Vec<SnapAct>> {
    let writer_ops = proptest::collection::vec(
        prop_oneof![
            3 => (0usize..900).prop_map(|len| Op::Append { len }),
            3 => (any::<u64>(), 0usize..700).prop_map(|(at, len)| Op::Insert { at, len }),
            3 => (any::<u64>(), any::<u64>())
                .prop_map(|(at, len)| Op::Delete { at, len: len % 1_500 }),
            2 => (any::<u64>(), 0usize..600).prop_map(|(at, len)| Op::Replace { at, len }),
            1 => any::<u64>().prop_map(|to| Op::Truncate { to }),
        ],
        1..6,
    );
    proptest::collection::vec(
        prop_oneof![
            4 => (any::<usize>(), writer_ops, any::<u8>())
                .prop_map(|(obj, ops, b)| SnapAct::Txn { obj, ops, commit: b % 5 != 0 }),
            2 => Just(SnapAct::Pin),
            3 => any::<usize>().prop_map(|r| SnapAct::ReadPinned { r }),
            2 => any::<usize>().prop_map(|r| SnapAct::DropPin { r }),
        ],
        1..30,
    )
}

/// Replay one concrete op through a transaction handle.
fn txn_apply(txn: &Txn, obj: &mut LargeObject, c: &Cop) {
    match c {
        Cop::Append(data) => txn.append(obj, data).unwrap(),
        Cop::Insert(at, data) => txn.insert(obj, *at, data).unwrap(),
        Cop::Delete(at, len) => txn.delete(obj, *at, *len).unwrap(),
        Cop::Replace(at, data) => txn.replace(obj, *at, data).unwrap(),
        Cop::Truncate(to) => txn.truncate(obj, *to).unwrap(),
        Cop::Read(..) | Cop::Compact | Cop::Consolidate => {
            unreachable!("not in the writer op set")
        }
    }
}

/// A pinned reader and what the world looked like when it pinned.
fn assert_pinned_view(snap: &Snapshot, objs: &[LargeObject], models: &[Vec<u8>]) {
    for (obj, model) in objs.iter().zip(models) {
        assert_eq!(
            &snap.read_all(obj.id()).unwrap(),
            model,
            "pinned view of object {} diverged from its pin-point model",
            obj.id()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: prop_cases(), ..ProptestConfig::default() })]

    /// Model-based snapshot isolation: interleaved writer transactions
    /// and pinned readers over a shared durable store. Every pinned
    /// reader's view stays byte-equal to the model at its pin point —
    /// across later commits, aborts, and mid-transaction states — and
    /// the volume comes out of the run structurally clean (no pages
    /// leaked by the deferred-free parking).
    #[test]
    fn pinned_readers_see_their_pin_point(acts in snap_acts()) {
        const SPACES: usize = 2;
        const PPS: u64 = 1024;
        const WAL_PAGES: u64 = 62;
        let volume = MemVolume::with_profile(
            1024,
            (PPS + 1) * SPACES as u64 + WAL_PAGES,
            DiskProfile::FREE,
        )
        .shared();
        let mut store = ObjectStore::create_durable(
            volume,
            SPACES,
            PPS,
            StoreConfig::default(),
            WAL_PAGES,
        )
        .unwrap();
        let mut objs = vec![
            store.create_with(&fill(1, 700), None).unwrap(),
            store.create_with(&fill(2, 1_300), None).unwrap(),
        ];
        let mut models: Vec<Vec<u8>> = vec![fill(1, 700), fill(2, 1_300)];
        let cs = ConcurrentStore::new(store);
        let mut pins: Vec<(Snapshot, Vec<Vec<u8>>)> = Vec::new();

        for (i, act) in acts.iter().enumerate() {
            match act {
                SnapAct::Txn { obj, ops, commit } => {
                    let o = obj % objs.len();
                    let txn = cs.begin();
                    let mut work = objs[o].clone();
                    let mut m = models[o].clone();
                    for (j, op) in ops.iter().enumerate() {
                        let seed = (i * 7 + j) as u8;
                        let Some(c) = concretize(op, m.len() as u64, seed, 8_000) else {
                            continue;
                        };
                        model_apply(&mut m, &c);
                        txn_apply(&txn, &mut work, &c);
                    }
                    // Read-your-writes: the writing scope sees its own
                    // uncommitted bytes...
                    prop_assert_eq!(&txn.read_all(&work).unwrap(), &m);
                    // ...while a snapshot pinned mid-transaction sees
                    // only the last *committed* state.
                    let mid = cs.snapshot();
                    prop_assert_eq!(&mid.read_all(objs[o].id()).unwrap(), &models[o]);
                    drop(mid);
                    if *commit {
                        txn.commit().unwrap();
                        objs[o] = work;
                        models[o] = m;
                    } else {
                        txn.abort().unwrap();
                    }
                    // Uncommitted (or aborted) writes never leak into a
                    // fresh post-transaction snapshot either.
                    let now = cs.snapshot();
                    assert_pinned_view(&now, &objs, &models);
                    drop(now);
                }
                SnapAct::Pin => {
                    let snap = cs.snapshot();
                    assert_pinned_view(&snap, &objs, &models);
                    pins.push((snap, models.clone()));
                }
                SnapAct::ReadPinned { r } => {
                    if !pins.is_empty() {
                        let (snap, at_pin) = &pins[r % pins.len()];
                        assert_pinned_view(snap, &objs, at_pin);
                    }
                }
                SnapAct::DropPin { r } => {
                    if !pins.is_empty() {
                        let idx = r % pins.len();
                        pins.remove(idx);
                    }
                }
            }
        }
        // Every surviving pin still reads its pin point at the end.
        for (snap, at_pin) in &pins {
            assert_pinned_view(snap, &objs, at_pin);
        }
        drop(pins);

        let store = match cs.try_into_inner() {
            Ok(s) => s,
            Err(_) => panic!("a handle outlived the script"),
        };
        let named: Vec<(String, LargeObject)> = objs
            .iter()
            .enumerate()
            .map(|(i, o)| (format!("obj-{i}"), o.clone()))
            .collect();
        let report = eos_check::check_store(&store, &named, None);
        prop_assert!(report.is_clean(), "{}", report.render_table());
        for (obj, model) in objs.iter().zip(&models) {
            prop_assert_eq!(&store.read_all(obj).unwrap(), model);
        }
    }
}
