//! Workspace-level integration tests: the full stack (pager → buddy →
//! object manager) on file-backed volumes, persistence across process
//! "restarts", and cross-store agreement on identical workloads.

use eos::baselines::{ExodusStore, StarburstStore};
use eos::buddy::Geometry;
use eos::core::{BlobStore, LargeObject, ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, FileVolume, MemVolume};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 7) % 253) as u8).collect()
}

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "eos-it-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn file_backed_store_survives_reopen() {
    let dir = tmpdir();
    let path = dir.join("db.eos");
    let (spaces, pps) = (2usize, 1000u64);
    let descriptor;
    let content = pattern(300_000);
    {
        let vol = FileVolume::create(&path, 1024, (pps + 1) * spaces as u64, DiskProfile::FREE)
            .unwrap()
            .shared();
        let mut store = ObjectStore::create(vol, spaces, pps, StoreConfig::default()).unwrap();
        let mut obj = store.create_with(&content, None).unwrap();
        store.insert(&mut obj, 1000, b"persisted-marker").unwrap();
        store.verify_object(&obj).unwrap();
        descriptor = obj.to_bytes();
        // Store and volume drop: everything must be on "disk".
    }
    {
        let vol = FileVolume::open(&path, 1024, DiskProfile::FREE)
            .unwrap()
            .shared();
        let mut store = ObjectStore::open(vol, spaces, pps, StoreConfig::default(), 100).unwrap();
        let obj = LargeObject::from_bytes(&descriptor).unwrap();
        store.verify_object(&obj).unwrap();
        let got = store.read(&obj, 1000, 16).unwrap();
        assert_eq!(got, b"persisted-marker");
        assert_eq!(obj.size(), content.len() as u64 + 16);
        // The reopened store can keep allocating without trampling the
        // old object.
        let mut fresh = store.create_with(&pattern(50_000), None).unwrap();
        store.verify_object(&obj).unwrap();
        store.verify_object(&fresh).unwrap();
        store.delete_object(&mut fresh).unwrap();
        assert_eq!(store.read(&obj, 1000, 16).unwrap(), b"persisted-marker");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn self_describing_volume_via_catalog_and_boot_record() {
    // The full adoption story: everything needed to reopen the database
    // lives on the volume itself (boot record -> catalog -> objects).
    let dir = tmpdir();
    let path = dir.join("library.eos");
    let (spaces, pps) = (1usize, 1900u64);
    {
        let vol = FileVolume::create(&path, 1024, (pps + 1) * spaces as u64, DiskProfile::FREE)
            .unwrap()
            .shared();
        let mut store = ObjectStore::create(vol, spaces, pps, StoreConfig::default()).unwrap();
        let mut cat = eos::catalog::Catalog::new();
        for (name, size) in [("alpha", 10_000usize), ("beta", 250_000), ("gamma", 64)] {
            let obj = store.create_with(&pattern(size), None).unwrap();
            cat.put(name, &obj);
        }
        cat.save(&mut store).unwrap();
    }
    {
        let vol = FileVolume::open(&path, 1024, DiskProfile::FREE)
            .unwrap()
            .shared();
        let mut store = ObjectStore::open(vol, spaces, pps, StoreConfig::default(), 1000).unwrap();
        let mut cat = eos::catalog::Catalog::load(&store).unwrap();
        assert_eq!(cat.len(), 3);
        let beta = cat.get("beta").unwrap();
        assert_eq!(store.read_all(&beta).unwrap(), pattern(250_000));
        // Edit an object and re-register it.
        let mut gamma = cat.get("gamma").unwrap();
        store.append(&mut gamma, b" more").unwrap();
        cat.put("gamma", &gamma);
        cat.save(&mut store).unwrap();
    }
    {
        let vol = FileVolume::open(&path, 1024, DiskProfile::FREE)
            .unwrap()
            .shared();
        let store = ObjectStore::open(vol, spaces, pps, StoreConfig::default(), 2000).unwrap();
        let cat = eos::catalog::Catalog::load(&store).unwrap();
        let gamma = cat.get("gamma").unwrap();
        assert_eq!(gamma.size(), 64 + 5);
        store.verify_object(&gamma).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn all_stores_agree_on_the_same_edit_script() {
    // Run one deterministic edit script through EOS, Exodus and
    // Starburst via the common BlobStore trait; all three must end with
    // byte-identical objects.
    let page = 512usize;
    let g = Geometry::for_page_size(page);
    let pps = g.max_space_pages.min(1800);
    let spaces = 3usize;
    let mk_vol =
        || MemVolume::with_profile(page, (pps + 1) * spaces as u64 + 2, DiskProfile::FREE).shared();

    let mut eos_store = ObjectStore::create(
        mk_vol(),
        spaces,
        pps,
        StoreConfig {
            threshold: Threshold::Fixed(4),
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let mut exo = ExodusStore::create(mk_vol(), spaces, pps, 2).unwrap();
    let mut star = StarburstStore::create(mk_vol(), spaces, pps).unwrap();

    let base = pattern(60_000);
    let mut he = BlobStore::create(&mut eos_store, &base, false).unwrap();
    let mut hx = exo.create(&base, false).unwrap();
    let mut hs = star.create(&base, false).unwrap();
    let mut model = base;

    let mut x = 0xDEAD_BEEFu64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for k in 0..60 {
        let size = model.len() as u64;
        match next() % 4 {
            0 => {
                let data = pattern((next() % 3000) as usize);
                let at = next() % (size + 1);
                BlobStore::insert(&mut eos_store, &mut he, at, &data).unwrap();
                exo.insert(&mut hx, at, &data).unwrap();
                star.insert(&mut hs, at, &data).unwrap();
                model.splice(at as usize..at as usize, data);
            }
            1 => {
                let at = next() % size;
                let len = (next() % 4000).min(size - at);
                if len == 0 {
                    continue;
                }
                BlobStore::delete(&mut eos_store, &mut he, at, len).unwrap();
                exo.delete(&mut hx, at, len).unwrap();
                star.delete(&mut hs, at, len).unwrap();
                model.drain(at as usize..(at + len) as usize);
            }
            2 => {
                let at = next() % size;
                let len = ((next() % 800).min(size - at)) as usize;
                let data = pattern(len);
                BlobStore::replace(&mut eos_store, &mut he, at, &data).unwrap();
                exo.replace(&mut hx, at, &data).unwrap();
                star.replace(&mut hs, at, &data).unwrap();
                model[at as usize..at as usize + len].copy_from_slice(&data);
            }
            _ => {
                let data = pattern((next() % 2000) as usize);
                BlobStore::append(&mut eos_store, &mut he, &data).unwrap();
                exo.append(&mut hx, &data).unwrap();
                star.append(&mut hs, &data).unwrap();
                model.extend(data);
            }
        }
        assert_eq!(
            BlobStore::read(&eos_store, &he, 0, model.len() as u64).unwrap(),
            model,
            "eos diverged at step {k}"
        );
        assert_eq!(
            exo.read(&hx, 0, model.len() as u64).unwrap(),
            model,
            "exodus diverged at step {k}"
        );
        assert_eq!(
            star.read(&hs, 0, model.len() as u64).unwrap(),
            model,
            "starburst diverged at step {k}"
        );
    }
    eos_store.verify_object(&he).unwrap();
}

#[test]
fn many_objects_share_one_store() {
    let mut store = ObjectStore::in_memory(1024, 8_000);
    let mut objs = Vec::new();
    for i in 0..40usize {
        let data = pattern(1000 + i * 777);
        objs.push((
            store.create_with(&data, Some(data.len() as u64)).unwrap(),
            data,
        ));
    }
    // Interleaved edits.
    for (i, (obj, model)) in objs.iter_mut().enumerate() {
        let at = (i * 131) as u64 % obj.size();
        store.insert(obj, at, b"~interleaved~").unwrap();
        model.splice(at as usize..at as usize, *b"~interleaved~");
    }
    for (obj, model) in &objs {
        assert_eq!(&store.read_all(obj).unwrap(), model);
        store.verify_object(obj).unwrap();
    }
    // Delete every other object; the rest stay intact.
    let free_before = store.buddy().total_free_pages();
    for (i, (obj, _)) in objs.iter_mut().enumerate() {
        if i % 2 == 0 {
            store.delete_object(obj).unwrap();
        }
    }
    assert!(store.buddy().total_free_pages() > free_before);
    for (i, (obj, model)) in objs.iter().enumerate() {
        if i % 2 == 1 {
            assert_eq!(&store.read_all(obj).unwrap(), model);
        }
    }
}

#[test]
fn unlimited_size_within_volume_bounds() {
    // Objective 1 of the paper: objects bounded only by physical
    // storage. Grow one object to ~56 MiB across four buddy spaces
    // (beyond any single space / maximum segment).
    let g = Geometry::for_page_size(4096);
    let spaces = 4usize;
    let pps = g.max_space_pages; // 16272 pages each
    let vol =
        MemVolume::with_profile(4096, (pps + 1) * spaces as u64 + 2, DiskProfile::FREE).shared();
    let mut store = ObjectStore::create(vol, spaces, pps, StoreConfig::default()).unwrap();
    let mut obj = store.create_object();
    let chunk = vec![0xC3u8; 4 << 20];
    {
        let mut s = store.open_append(&mut obj, None).unwrap();
        for _ in 0..14 {
            s.append(&chunk).unwrap();
        }
        s.close().unwrap();
    }
    assert_eq!(obj.size(), 14 * (4 << 20) as u64);
    let stats = store.object_stats(&obj).unwrap();
    assert!(
        stats.max_seg_pages <= store.max_seg_pages(),
        "segments obey the §3 maximum"
    );
    assert!(stats.segments >= 2, "object spans several max segments");
    // Random access at the far end still works and is cheap.
    store.reset_io_stats();
    let got = store.read(&obj, obj.size() - 5, 5).unwrap();
    assert_eq!(got, vec![0xC3u8; 5]);
    assert!(store.io_stats().seeks <= 3);
    store.verify_object(&obj).unwrap();
}
