//! MVCC snapshot reads (DESIGN.md §14): epoch pins, root publication,
//! deferred-free parking and reclaim, and the lock-free read path.
//!
//! Three properties are pinned here, each against the `mvcc.*` and
//! `locks.*` instruments so regressions surface as counter drift, not
//! just as corrupted bytes:
//!
//! 1. A stalled reader parks every superseded page: writers churn, the
//!    reader's view stays byte-identical, nothing is reclaimed until it
//!    drops — and then everything is.
//! 2. Readers acquire **zero** range locks: the `locks.acquired`
//!    counter is flat across a read-only phase.
//! 3. A snapshot is one frozen epoch: later commits (including objects
//!    created after the pin) are invisible to it, while fresh reads see
//!    them immediately.

use std::sync::Arc;
use std::time::Duration;

use eos::core::{ConcurrentStore, Error, LargeObject, ObjectStore, StoreConfig};
use eos::obs::Metrics;
use eos::pager::{DiskProfile, MemVolume, SharedVolume, ThrottledVolume};

fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| seed.wrapping_add((i % 249) as u8))
        .collect()
}

/// A durable store on a throttled in-memory volume, with its own
/// metrics domain so the `mvcc.*` / `locks.*` assertions are not
/// polluted by other tests in the process.
fn durable_store(metrics: &Metrics) -> ObjectStore {
    // Four buddy spaces: parked deferred-free batches keep superseded
    // pages *allocated* until the stalled reader drops, so the churn
    // tests need roughly double the live working set.
    let inner: SharedVolume =
        MemVolume::with_profile(1024, (1024 + 1) * 4 + 62, DiskProfile::FREE).shared();
    let volume: SharedVolume = Arc::new(ThrottledVolume::new(inner, Duration::from_micros(50)));
    let mut store = ObjectStore::create_durable(
        volume,
        4,
        1024,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        62,
    )
    .unwrap();
    store.set_metrics(metrics);
    store
}

fn check_clean(cs: ConcurrentStore, named: &[(String, LargeObject)]) {
    let store = match cs.try_into_inner() {
        Ok(s) => s,
        Err(_) => panic!("a ConcurrentStore handle outlived the test"),
    };
    let report = eos_check::check_store(&store, named, None);
    assert!(report.is_clean(), "{}", report.render_table());
}

/// Satellite: the reclaim-safety stress. A deliberately stalled reader
/// pins the first epoch while writer threads churn replace/append
/// transactions; superseded pages must park (deferred_pages > 0), the
/// stalled view must stay byte-identical throughout, and dropping the
/// reader must reclaim every parked batch (deferred_pages back to 0).
#[test]
fn stalled_reader_parks_superseded_pages_until_it_drops() {
    const WRITERS: u64 = 4;
    const TXNS: u64 = 12;
    let metrics = Metrics::new();
    let mut store = durable_store(&metrics);

    let before = pattern(3, 60_000);
    let target = store.create_with(&before, None).unwrap();
    let cs = ConcurrentStore::new(store);

    // The stalled reader: pins the epoch *before* any churn.
    let stalled = cs.snapshot();
    assert_eq!(stalled.read_all(target.id()).unwrap(), before);

    // Churn: every writer owns one object and replaces ranges of it,
    // freeing its superseded segments at each commit — all of which
    // must park behind the stalled pin.
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let cs = cs.clone();
        handles.push(std::thread::spawn(move || {
            let txn = cs.begin();
            let mut obj = txn.create(&pattern(w as u8, 20_000), None).unwrap();
            txn.commit().unwrap();
            for i in 0..TXNS {
                let txn = cs.begin();
                let off = (i * 1_337) % 10_000;
                txn.replace(&mut obj, off, &pattern((w + i) as u8, 4_000))
                    .unwrap();
                txn.commit().unwrap();
            }
            obj
        }));
    }
    let churned: Vec<LargeObject> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let snap = metrics.snapshot();
    let parked = snap.gauge("mvcc.deferred_pages").unwrap_or(0);
    assert!(
        parked > 0,
        "writer churn under a stalled reader parked nothing"
    );
    assert!(snap.gauge("mvcc.oldest_epoch_lag").unwrap_or(0) > 0);

    // The stalled view is still byte-identical — the pages its roots
    // reference were superseded but not reclaimed.
    assert_eq!(stalled.read_all(target.id()).unwrap(), before);

    // Drop the pin: everything parked is reclaimable now (no other
    // reader is live), so the deferred list must drain to zero.
    drop(stalled);
    let snap = metrics.snapshot();
    assert_eq!(
        snap.gauge("mvcc.deferred_pages").unwrap_or(0),
        0,
        "parked batches survived the last reader"
    );
    assert!(snap.counter("mvcc.reclaim_batches").unwrap_or(0) > 0);
    assert!(snap.counter("mvcc.reclaimed_pages").unwrap_or(0) > 0);
    assert_eq!(snap.gauge("mvcc.oldest_epoch_lag").unwrap_or(0), 0);

    let mut named = vec![("target".to_string(), target)];
    for (w, obj) in churned.into_iter().enumerate() {
        named.push((format!("churn-{w}"), obj));
    }
    check_clean(cs, &named);
}

/// Satellite: the read path takes no range locks. After a write phase
/// (which does lock), a read-only phase of `Txn::read` and snapshot
/// reads must leave `locks.acquired` exactly where it was.
#[test]
fn readers_acquire_zero_range_locks() {
    let metrics = Metrics::new();
    let mut store = durable_store(&metrics);
    let bytes = pattern(9, 50_000);
    let shared = store.create_with(&bytes, None).unwrap();
    let cs = ConcurrentStore::new(store);

    // Write phase: locks are taken (sanity for the instrument itself).
    let txn = cs.begin();
    let mut obj = txn.create(&pattern(1, 8_000), None).unwrap();
    txn.commit().unwrap();
    let txn = cs.begin();
    txn.replace(&mut obj, 100, &pattern(2, 2_000)).unwrap();
    txn.commit().unwrap();
    let locks_after_writes = metrics.snapshot().counter("locks.acquired").unwrap_or(0);
    assert!(locks_after_writes > 0, "writers never touched the table");

    // Read-only phase: four reader threads, a mix of per-read implicit
    // pins and block reads under one snapshot, all content-checked.
    let mut readers = Vec::new();
    for r in 0..4u64 {
        let cs = cs.clone();
        let expect = bytes.clone();
        let obj = shared.clone();
        readers.push(std::thread::spawn(move || {
            for i in 0..30u64 {
                let off = (r * 997 + i * 4_099) % 45_000;
                let txn = cs.begin();
                let got = txn.read(&obj, off, 4_000).unwrap();
                assert_eq!(got, &expect[off as usize..off as usize + 4_000]);
                txn.commit().unwrap();
            }
            let snap = cs.snapshot();
            for i in 0..30u64 {
                let off = (r * 31 + i * 2_003) % 45_000;
                let got = snap.read(obj.id(), off, 4_000).unwrap();
                assert_eq!(got, &expect[off as usize..off as usize + 4_000]);
            }
        }));
    }
    for h in readers {
        h.join().unwrap();
    }

    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter("locks.acquired").unwrap_or(0),
        locks_after_writes,
        "the read-only phase moved the lock-grant counter"
    );
    assert_eq!(snap.counter("locks.conflicts").unwrap_or(0), 0);
    assert_eq!(cs.locks().held_count(shared.id()), 0);
    // Every read (implicit or snapshot) pinned an epoch.
    assert!(snap.counter("mvcc.snapshots").unwrap_or(0) >= 4 * 31);

    check_clean(
        cs,
        &[("shared".to_string(), shared), ("w".to_string(), obj)],
    );
}

/// A snapshot is one frozen epoch: commits after the pin — replaces,
/// appends, deletes, and whole new objects — are invisible through it,
/// while fresh transactions and fresh snapshots see every one of them.
#[test]
fn snapshot_is_a_frozen_epoch() {
    let metrics = Metrics::new();
    let mut store = durable_store(&metrics);
    let v1 = pattern(5, 30_000);
    let a = store.create_with(&v1, None).unwrap();
    let cs = ConcurrentStore::new(store);

    let old = cs.snapshot();
    assert_eq!(old.object_ids(), vec![a.id()]);
    assert_eq!(old.size_of(a.id()).unwrap(), v1.len() as u64);

    // Advance the store: mutate `a` and create `b`.
    let mut a2 = a.clone();
    let txn = cs.begin();
    txn.replace(&mut a2, 1_000, &pattern(77, 5_000)).unwrap();
    txn.append(&mut a2, &pattern(78, 2_000)).unwrap();
    let b = txn.create(&pattern(79, 9_000), None).unwrap();
    txn.commit().unwrap();

    // The frozen view: pre-commit bytes, no `b`.
    assert_eq!(old.read_all(a.id()).unwrap(), v1);
    assert!(matches!(
        old.read_all(b.id()),
        Err(Error::UnknownObject { .. })
    ));
    assert!(old.object(b.id()).is_none());

    // A *fresh* snapshot and a fresh transaction both see the commit.
    let new = cs.snapshot();
    assert!(new.epoch() > old.epoch());
    let mut want = v1.clone();
    want[1_000..6_000].copy_from_slice(&pattern(77, 5_000));
    want.extend(pattern(78, 2_000));
    assert_eq!(new.read_all(a.id()).unwrap(), want);
    assert_eq!(new.read_all(b.id()).unwrap(), pattern(79, 9_000));
    let txn = cs.begin();
    assert_eq!(txn.read_all(&a2).unwrap(), want);
    txn.commit().unwrap();

    // Read-your-writes: inside a writing transaction, reads of the
    // written object resolve to the uncommitted view, not the pin.
    let txn = cs.begin();
    let mut a3 = a2.clone();
    txn.replace(&mut a3, 0, b"XYZZY").unwrap();
    assert_eq!(&txn.read(&a3, 0, 5).unwrap(), b"XYZZY");
    txn.abort().unwrap();
    // ... and the abort keeps the committed view intact.
    let txn = cs.begin();
    assert_eq!(txn.read(&a2, 0, 5).unwrap(), &want[..5]);
    txn.commit().unwrap();

    drop(old);
    drop(new);
    check_clean(cs, &[("a".to_string(), a2), ("b".to_string(), b)]);
}

/// The solo (non-grouped) commit path publishes roots the same way the
/// grouped path does: without publication, a snapshot after a solo
/// commit would still resolve the old root.
#[test]
fn solo_commits_publish_to_readers_too() {
    let metrics = Metrics::new();
    let mut store = durable_store(&metrics);
    let v1 = pattern(11, 12_000);
    let a = store.create_with(&v1, None).unwrap();
    let cs = ConcurrentStore::with_group_commit(store, false);

    let mut a2 = a.clone();
    let txn = cs.begin();
    txn.replace(&mut a2, 0, &pattern(12, 3_000)).unwrap();
    txn.commit().unwrap();

    let snap = cs.snapshot();
    let mut want = v1.clone();
    want[..3_000].copy_from_slice(&pattern(12, 3_000));
    assert_eq!(snap.read_all(a.id()).unwrap(), want);
    drop(snap);

    // A stalled reader parks solo-commit frees just the same.
    let pin = cs.snapshot();
    let txn = cs.begin();
    txn.replace(&mut a2, 4_000, &pattern(13, 3_000)).unwrap();
    txn.commit().unwrap();
    assert!(metrics.snapshot().gauge("mvcc.deferred_pages").unwrap_or(0) > 0);
    assert_eq!(pin.read_all(a.id()).unwrap(), want);
    drop(pin);
    assert_eq!(
        metrics.snapshot().gauge("mvcc.deferred_pages").unwrap_or(0),
        0
    );

    check_clean(cs, &[("a".to_string(), a2)]);
}

// ---- reclaim write-ordering (eos-crashdep L6, DESIGN.md §15) ------------
//
// The `mvcc-publish` durability class requires `commit-frame`: pages a
// commit superseded must not re-enter the free pool (directory-page
// writes in `apply_commit`) before that commit's log frame is forced.
// The counter tests above show *that* parked batches drain; these two
// record the raw write/sync interleaving and pin *when*.

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Write { start: u64 },
    Sync,
}

struct EventVolume {
    inner: SharedVolume,
    events: std::sync::Mutex<Vec<Event>>,
}

impl EventVolume {
    fn new(inner: SharedVolume) -> Arc<EventVolume> {
        Arc::new(EventVolume {
            inner,
            events: std::sync::Mutex::new(Vec::new()),
        })
    }

    fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }
}

impl eos::pager::Volume for EventVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn read_into(&self, start: u64, pages: u64, buf: &mut [u8]) -> eos::pager::Result<()> {
        self.inner.read_into(start, pages, buf)
    }
    fn write_pages(&self, start: u64, data: &[u8]) -> eos::pager::Result<()> {
        self.events.lock().unwrap().push(Event::Write { start });
        self.inner.write_pages(start, data)
    }
    fn stats(&self) -> eos::pager::IoStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
    fn sync(&self) -> eos::pager::Result<()> {
        self.events.lock().unwrap().push(Event::Sync);
        self.inner.sync()
    }
}

/// Log (WAL) region base for the recorder-store geometry below.
const REC_WAL_BASE: u64 = (1024 + 1) * 4;

fn is_log_write(e: &Event) -> bool {
    matches!(e, Event::Write { start } if *start >= REC_WAL_BASE)
}

fn is_data_write(e: &Event) -> bool {
    matches!(e, Event::Write { start } if *start < REC_WAL_BASE)
}

/// A durable store on an event-recording volume (same geometry as
/// [`durable_store`], minus the throttle).
fn recorder_store(metrics: &Metrics) -> (ObjectStore, Arc<EventVolume>) {
    let inner: SharedVolume =
        MemVolume::with_profile(1024, (1024 + 1) * 4 + 62, DiskProfile::FREE).shared();
    let recorder = EventVolume::new(inner);
    let volume: SharedVolume = recorder.clone();
    let mut store = ObjectStore::create_durable(
        volume,
        4,
        1024,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        62,
    )
    .unwrap();
    store.set_metrics(metrics);
    (store, recorder)
}

/// With a reader pinned, a superseding commit parks its frees; the
/// reclaim I/O runs only when the pin drops — strictly after the
/// commit's frame force in the event stream — and touches only the
/// data region (directory pages), never the log.
#[test]
fn parked_reclaim_runs_after_the_superseding_commit_force() {
    let metrics = Metrics::new();
    let (mut store, recorder) = recorder_store(&metrics);
    let mut a = store.create_with(&pattern(21, 12_000), None).unwrap();
    let cs = ConcurrentStore::new(store);

    let pin = cs.snapshot();
    recorder.take();

    // Copy-on-write replace: the superseded segment's pages become a
    // deferred-free batch, parked behind the pin.
    let txn = cs.begin();
    txn.replace(&mut a, 0, &pattern(22, 8_000)).unwrap();
    txn.commit().unwrap();
    let commit_events = recorder.take();

    let last_log = commit_events
        .iter()
        .rposition(is_log_write)
        .expect("the commit wrote a log frame");
    assert!(
        commit_events[last_log + 1..].contains(&Event::Sync),
        "the commit frame was never forced"
    );
    assert!(
        metrics.snapshot().gauge("mvcc.deferred_pages").unwrap_or(0) > 0,
        "the superseded pages did not park behind the pin"
    );

    // The pin drops: every reclaim write sits after the force above in
    // the stream (it is in a later `take`), and none of it is log I/O.
    drop(pin);
    let reclaim_events = recorder.take();
    assert!(
        reclaim_events.iter().any(is_data_write),
        "dropping the last pin produced no reclaim I/O"
    );
    assert!(
        !reclaim_events.iter().any(is_log_write),
        "reclaim must not write the log: {reclaim_events:?}"
    );
    assert_eq!(
        metrics.snapshot().gauge("mvcc.deferred_pages").unwrap_or(0),
        0
    );

    check_clean(cs, &[("a".to_string(), a)]);
}

/// With no reader pinned, the frees apply inside the commit itself —
/// but still only after the frame force: every write after the
/// commit's last sync is data-region I/O (the `mvcc-publish` batch),
/// and the log is silent from the force onwards.
#[test]
fn immediate_free_application_follows_the_frame_force() {
    let metrics = Metrics::new();
    let (mut store, recorder) = recorder_store(&metrics);
    let mut a = store.create_with(&pattern(31, 12_000), None).unwrap();
    let cs = ConcurrentStore::new(store);
    recorder.take();

    let txn = cs.begin();
    txn.replace(&mut a, 0, &pattern(32, 8_000)).unwrap();
    txn.commit().unwrap();
    let events = recorder.take();

    let last_sync = events
        .iter()
        .rposition(|e| *e == Event::Sync)
        .expect("the commit synced");
    let last_log = events.iter().rposition(is_log_write).unwrap();
    assert!(
        last_log < last_sync,
        "the frame force must follow the last log write"
    );
    let tail = &events[last_sync + 1..];
    assert!(
        tail.iter().any(is_data_write),
        "no free-application I/O after the force: {events:?}"
    );
    assert!(
        tail.iter().all(is_data_write),
        "only data-region writes may follow the force: {tail:?}"
    );

    check_clean(cs, &[("a".to_string(), a)]);
}

/// Satellite (PR 10): out-of-order reader unpin. Three readers pin
/// three distinct epochs with a parked deferred-free batch between
/// each. Dropping the *youngest* pin first must reclaim nothing;
/// dropping the *oldest* while the middle one is still live must
/// recompute the oldest pinned epoch and drain exactly the batch the
/// surviving pin has passed — not everything, not nothing — while the
/// survivor's view stays byte-identical.
#[test]
fn out_of_order_unpin_recomputes_the_oldest_pin() {
    let metrics = Metrics::new();
    let mut store = durable_store(&metrics);
    let v1 = pattern(1, 30_000);
    let mut obj = store.create_with(&v1, None).unwrap();
    let cs = ConcurrentStore::new(store);

    let r1 = cs.snapshot();

    // Commit #1 (supersedes pages under r1's pin — parks one batch).
    let seg = pattern(2, 8_000);
    let txn = cs.begin();
    txn.replace(&mut obj, 0, &seg).unwrap();
    txn.commit().unwrap();
    let mut v2 = v1.clone();
    v2[..8_000].copy_from_slice(&seg);
    let r2 = cs.snapshot();

    // Commit #2 (parks a second batch, now behind r1 *and* r2).
    let txn = cs.begin();
    txn.replace(&mut obj, 10_000, &pattern(3, 8_000)).unwrap();
    txn.commit().unwrap();
    let r3 = cs.snapshot();

    let snap = metrics.snapshot();
    let parked = snap.gauge("mvcc.deferred_pages").unwrap_or(0);
    assert!(parked > 0, "commits under pinned readers parked nothing");

    // Youngest drops first: the oldest pin (r1) still protects both
    // batches, so nothing may be reclaimed.
    drop(r3);
    let snap = metrics.snapshot();
    assert_eq!(
        snap.gauge("mvcc.deferred_pages").unwrap_or(0),
        parked,
        "dropping a younger pin reclaimed pages an older pin protects"
    );
    assert_eq!(snap.counter("mvcc.reclaim_batches").unwrap_or(0), 0);

    // Oldest drops while the middle pin lives: the oldest pinned epoch
    // is recomputed to r2's, draining exactly commit #1's batch.
    drop(r1);
    let snap = metrics.snapshot();
    let left = snap.gauge("mvcc.deferred_pages").unwrap_or(0);
    assert!(left < parked, "dropping the oldest pin reclaimed nothing");
    assert!(
        left > 0,
        "a batch parked past the surviving pin was reclaimed early"
    );
    assert_eq!(snap.counter("mvcc.reclaim_batches").unwrap_or(0), 1);

    // The survivor still reads its pinned version, byte-exact.
    assert_eq!(r2.read_all(obj.id()).unwrap(), v2);

    drop(r2);
    let snap = metrics.snapshot();
    assert_eq!(snap.gauge("mvcc.deferred_pages").unwrap_or(0), 0);

    check_clean(cs, &[("obj".to_string(), obj)]);
}

/// A volume whose `sync` fails on demand: `fail_after(n)` lets the
/// next `n` syncs through and fails the one after (re-arm or disarm
/// freely; `u64::MAX` = never fail).
struct FailSyncVolume {
    inner: SharedVolume,
    fuse: std::sync::atomic::AtomicU64,
}

impl FailSyncVolume {
    fn new(inner: SharedVolume) -> Arc<FailSyncVolume> {
        Arc::new(FailSyncVolume {
            inner,
            fuse: std::sync::atomic::AtomicU64::new(u64::MAX),
        })
    }

    fn fail_after(&self, n: u64) {
        self.fuse.store(n, std::sync::atomic::Ordering::SeqCst);
    }
}

impl eos::pager::Volume for FailSyncVolume {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn read_into(&self, start: u64, pages: u64, buf: &mut [u8]) -> eos::pager::Result<()> {
        self.inner.read_into(start, pages, buf)
    }
    fn write_pages(&self, start: u64, data: &[u8]) -> eos::pager::Result<()> {
        self.inner.write_pages(start, data)
    }
    fn stats(&self) -> eos::pager::IoStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
    fn sync(&self) -> eos::pager::Result<()> {
        use std::sync::atomic::Ordering;
        let left = self.fuse.load(Ordering::SeqCst);
        if left == u64::MAX {
            return self.inner.sync();
        }
        if left == 0 {
            self.fuse.store(u64::MAX, Ordering::SeqCst);
            return Err(eos::pager::Error::Io(std::io::Error::other(
                "injected sync failure",
            )));
        }
        self.fuse.store(left - 1, Ordering::SeqCst);
        self.inner.sync()
    }
}

/// Satellite (PR 10) regression: the group-commit force-failure path.
/// A commit whose log force fails must surface `CommitFailed` *and*
/// leave nothing stuck behind it: its deferred-free batch leaves the
/// buddy registry (`buddy.pending.extents` back to 0 once readers
/// drain), previously parked batches still drain to
/// `mvcc.deferred_pages = 0`, and the failed scope's byte ranges are
/// immediately re-lockable by a new transaction.
#[test]
fn failed_force_releases_locks_and_drains_parked_batches() {
    let metrics = Metrics::new();
    let inner: SharedVolume =
        MemVolume::with_profile(1024, (1024 + 1) * 4 + 62, DiskProfile::FREE).shared();
    let failer = FailSyncVolume::new(inner);
    let volume: SharedVolume = failer.clone();
    let mut store = ObjectStore::create_durable(
        volume,
        4,
        1024,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        62,
    )
    .unwrap();
    store.set_metrics(&metrics);
    let mut obj = store.create_with(&pattern(7, 30_000), None).unwrap();
    let cs = ConcurrentStore::new(store);

    // A pinned reader, and a successful commit that parks its frees
    // behind it.
    let reader = cs.snapshot();
    let txn = cs.begin();
    txn.replace(&mut obj, 0, &pattern(8, 6_000)).unwrap();
    txn.commit().unwrap();
    assert!(metrics.snapshot().gauge("mvcc.deferred_pages").unwrap_or(0) > 0);

    // The failing commit: let the data barrier (sync #1) through and
    // fail the log force (sync #2).
    let txn = cs.begin();
    let mut failed_view = obj.clone();
    txn.replace(&mut failed_view, 10_000, &pattern(9, 6_000))
        .unwrap();
    failer.fail_after(1);
    let err = txn.commit().unwrap_err();
    failer.fail_after(u64::MAX);
    assert!(
        matches!(err, Error::CommitFailed { .. }),
        "force failure surfaced as {err:?}"
    );

    // Its ranges are immediately re-lockable: a fresh transaction
    // writes the same bytes without deadlocking on leaked locks.
    let txn = cs.begin();
    txn.replace(&mut obj, 10_000, &pattern(10, 6_000)).unwrap();
    txn.commit().unwrap();

    // Dropping the reader drains every *parked* batch, and the failed
    // commit's batch is out of the buddy registry too — nothing holds
    // `pending.extents` up once the deferred list is empty.
    drop(reader);
    let snap = metrics.snapshot();
    assert_eq!(
        snap.gauge("mvcc.deferred_pages").unwrap_or(0),
        0,
        "parked batches survived the last reader after a failed force"
    );
    assert_eq!(
        snap.gauge("buddy.pending.extents").unwrap_or(0),
        0,
        "the failed commit's free batch leaked in the buddy registry"
    );
}
