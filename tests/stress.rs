//! Heavy soak tests, `#[ignore]`d by default. Run with:
//!
//! ```text
//! cargo test --release -p eos --test stress -- --ignored
//! ```

use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};

#[test]
#[ignore = "heavy: ~100 MB object, thousands of operations"]
fn hundred_megabyte_churn() {
    let g = eos::buddy::Geometry::for_page_size(4096);
    let spaces = 4usize;
    let pps = g.max_space_pages;
    let vol =
        MemVolume::with_profile(4096, (pps + 1) * spaces as u64 + 2, DiskProfile::FREE).shared();
    let mut store = ObjectStore::create(
        vol,
        spaces,
        pps,
        StoreConfig {
            threshold: Threshold::Fixed(16),
            ..StoreConfig::default()
        },
    )
    .unwrap();

    // Build ~100 MB via an append session.
    let chunk: Vec<u8> = (0..1_048_576).map(|i| (i % 251) as u8).collect();
    let mut obj = store.create_object();
    {
        let mut s = store.open_append(&mut obj, Some(100 << 20)).unwrap();
        for _ in 0..100 {
            s.append(&chunk).unwrap();
        }
        s.close().unwrap();
    }
    assert_eq!(obj.size(), 100 << 20);
    store.verify_object(&obj).unwrap();

    // Churn: 2,000 mixed operations with spot checks.
    let mut x = 0x1357_9BDFu64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut expected_size = obj.size();
    for i in 0..2_000u64 {
        let size = obj.size();
        match next() % 10 {
            0..=3 => {
                let off = next() % size;
                let len = (next() % 8_192).max(1);
                store.insert(&mut obj, off, &chunk[..len as usize]).unwrap();
                expected_size += len;
            }
            4..=7 => {
                let off = next() % size;
                let len = (next() % 8_192).min(size - off).max(1);
                store.delete(&mut obj, off, len).unwrap();
                expected_size -= len;
            }
            8 => {
                let off = next() % (size - 4_096);
                store.replace(&mut obj, off, &chunk[..4_096]).unwrap();
            }
            _ => {
                let off = next() % (size - 1);
                let len = (next() % 65_536).min(size - off);
                let got = store.read(&obj, off, len).unwrap();
                assert_eq!(got.len() as u64, len);
            }
        }
        assert_eq!(obj.size(), expected_size, "size drift at op {i}");
        if i % 500 == 499 {
            store.verify_object(&obj).unwrap();
        }
    }
    store.verify_object(&obj).unwrap();

    // Compact and confirm the content length one last time.
    let stats = store.compact(&mut obj).unwrap();
    assert!(stats.segments_after <= stats.segments_before);
    assert_eq!(store.read(&obj, 0, 1).unwrap().len(), 1);
    store.verify_object(&obj).unwrap();

    // Tear down: no page leaks at 100 MB scale.
    let free_before_delete = store.buddy().total_free_pages();
    store.delete_object(&mut obj).unwrap();
    assert!(store.buddy().total_free_pages() > free_before_delete);
    assert_eq!(
        store.buddy().total_free_pages(),
        store.buddy().total_data_pages() - 1, // the boot page
    );
}

#[test]
#[ignore = "heavy: thousands of small objects"]
fn ten_thousand_small_objects() {
    let mut store = ObjectStore::in_memory(1024, 60_000);
    let mut objs = Vec::new();
    for i in 0..10_000usize {
        let data = vec![(i % 251) as u8; 1 + (i % 4_000)];
        objs.push((store.create_with(&data, None).unwrap(), data.len()));
    }
    for (i, (obj, len)) in objs.iter().enumerate() {
        assert_eq!(obj.size() as usize, *len, "object {i}");
    }
    // Delete all; perfect reclamation.
    for (mut obj, _) in objs {
        store.delete_object(&mut obj).unwrap();
    }
    assert_eq!(
        store.buddy().total_free_pages(),
        store.buddy().total_data_pages() - 1,
    );
}
