//! The barrier-mutation sweep — runtime half of eos-crashdep (L6).
//!
//! `tests/crash_sweep.rs` proves recovery holds at every I/O point when
//! every sync actually reached the platter. This suite attacks the
//! *syncs themselves*: the scripted crash workload runs once per
//! enumerated sync site with exactly that sync elided (the write group
//! it was supposed to seal stays queued behind the missing barrier),
//! and for each elision we search the crash images "power died after
//! sync *m*" for one that breaks recovery, committed-prefix equality,
//! or the `eos-check` invariants. A sync whose elision never produces a
//! failing image is dead weight — or worse, the static L6 contract
//! (DESIGN.md §15) claims an ordering the code does not need. Every
//! sync must be load-bearing.
//!
//! The census test closes the loop from the other side: the static
//! seal-site list extracted by `eos_lint::crashdep_analysis` must match
//! a pinned inventory, so adding/removing a sync in eos-core forces
//! whoever did it to revisit both the L6 annotations and this sweep.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use eos::core::{LargeObject, ObjectStore, StoreConfig};
use eos::pager::{DiskProfile, MemVolume, MutatingVolume, SharedVolume};

const PAGE: usize = 512;
const SPACES: usize = 2;
const PPS: u64 = 126;
const WAL_PAGES: u64 = 66;
const VOLUME_PAGES: u64 = (PPS + 1) * SPACES as u64 + WAL_PAGES;

/// One mutating operation; objects are named by creation order (the
/// durable store assigns ids 1, 2, … deterministically).
#[derive(Debug, Clone)]
enum Op {
    Create(Vec<u8>),
    Append(u64, Vec<u8>),
    Insert(u64, u64, Vec<u8>),
    Delete(u64, u64, u64),
    Replace(u64, u64, Vec<u8>),
    Truncate(u64, u64),
    DeleteObj(u64),
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(salt))
        .collect()
}

/// The scripted workload from `crash_sweep.rs`: ten transaction scopes
/// exercising every §4 operation across page and segment boundaries.
fn workload() -> Vec<Vec<Op>> {
    vec![
        vec![
            Op::Create(pattern(3 * PAGE + 77, 1)),
            Op::Create(pattern(40, 2)),
        ],
        vec![
            Op::Append(1, pattern(2 * PAGE, 3)),
            Op::Insert(1, 700, pattern(300, 4)),
            Op::Append(2, pattern(PAGE + 13, 5)),
        ],
        vec![
            Op::Replace(1, 100, pattern(64, 6)),
            Op::Replace(1, PAGE as u64 - 17, pattern(200, 7)),
            Op::Replace(2, 0, pattern(30, 8)),
        ],
        vec![
            Op::Delete(1, 400, 900),
            Op::Truncate(2, 300),
            Op::Replace(1, 0, pattern(128, 9)),
        ],
        vec![Op::DeleteObj(2), Op::Create(pattern(2 * PAGE + 11, 10))],
        vec![
            Op::Append(3, pattern(500, 11)),
            Op::Append(3, pattern(4 * PAGE, 12)),
            Op::Replace(1, 50, pattern(90, 13)),
        ],
        vec![
            Op::Insert(3, PAGE as u64, pattern(700, 14)),
            Op::Delete(3, 200, 450),
            Op::Insert(1, 0, pattern(256, 15)),
            Op::Replace(3, 2 * PAGE as u64 + 5, pattern(300, 16)),
        ],
        vec![
            Op::Create(pattern(PAGE + 200, 17)),
            Op::Replace(4, 100, pattern(400, 18)),
            Op::Replace(4, 0, pattern(64, 19)),
            Op::Append(4, pattern(300, 20)),
        ],
        vec![
            Op::Truncate(3, 900),
            Op::Delete(1, 500, 800),
            Op::Truncate(4, 256),
        ],
        vec![
            Op::Replace(1, 10, pattern(48, 21)),
            Op::Append(3, pattern(150, 22)),
            Op::Insert(4, 128, pattern(99, 23)),
        ],
    ]
}

/// Apply one op to the byte-level model.
fn model_apply(model: &mut BTreeMap<u64, Vec<u8>>, next_id: &mut u64, op: &Op) {
    match op {
        Op::Create(bytes) => {
            model.insert(*next_id, bytes.clone());
            *next_id += 1;
        }
        Op::Append(id, bytes) => model.get_mut(id).unwrap().extend_from_slice(bytes),
        Op::Insert(id, off, bytes) => {
            let v = model.get_mut(id).unwrap();
            v.splice(*off as usize..*off as usize, bytes.iter().copied());
        }
        Op::Delete(id, off, len) => {
            let v = model.get_mut(id).unwrap();
            v.drain(*off as usize..(*off + *len) as usize);
        }
        Op::Replace(id, off, bytes) => {
            let v = model.get_mut(id).unwrap();
            v[*off as usize..*off as usize + bytes.len()].copy_from_slice(bytes);
        }
        Op::Truncate(id, size) => model.get_mut(id).unwrap().truncate(*size as usize),
        Op::DeleteObj(id) => {
            model.remove(id);
        }
    }
}

/// Apply one op to the store, mapping object id → live descriptor.
fn store_apply(
    store: &mut ObjectStore,
    handles: &mut BTreeMap<u64, LargeObject>,
    op: &Op,
) -> eos::core::Result<()> {
    match op {
        Op::Create(bytes) => {
            let obj = store.create_with(bytes, None)?;
            handles.insert(obj.id(), obj);
        }
        Op::Append(id, bytes) => {
            let obj = handles.get_mut(id).unwrap();
            store.append(obj, bytes)?;
        }
        Op::Insert(id, off, bytes) => {
            let obj = handles.get_mut(id).unwrap();
            store.insert(obj, *off, bytes)?;
        }
        Op::Delete(id, off, len) => {
            let obj = handles.get_mut(id).unwrap();
            store.delete(obj, *off, *len)?;
        }
        Op::Replace(id, off, bytes) => {
            let obj = handles.get_mut(id).unwrap();
            store.replace(obj, *off, bytes)?;
        }
        Op::Truncate(id, size) => {
            let obj = handles.get_mut(id).unwrap();
            store.truncate(obj, *size)?;
        }
        Op::DeleteObj(id) => {
            let mut obj = handles.remove(id).unwrap();
            store.delete_object(&mut obj)?;
        }
    }
    Ok(())
}

/// Model snapshots: `states[j]` = object id → bytes after `j` committed
/// transactions.
fn model_states() -> Vec<BTreeMap<u64, Vec<u8>>> {
    let mut states = vec![BTreeMap::new()];
    let mut model = BTreeMap::new();
    let mut next_id = 1u64;
    for txn in workload() {
        for op in &txn {
            model_apply(&mut model, &mut next_id, op);
        }
        states.push(model.clone());
    }
    states
}

/// Sync-count bookkeeping from one full (pass-through) workload run:
/// `pre[t]` / `post[t]` = syncs observed before `commit_txn` of txn `t`
/// was called / after it returned. Everything txn `t` made durable sits
/// at sync indices `< post[t]`, and its commit frame cannot be on disk
/// in any image that cuts before sync `pre[t]`.
struct SyncTrace {
    pre: Vec<usize>,
    post: Vec<usize>,
}

impl SyncTrace {
    /// Transactions **guaranteed** durable in the image "crashed after
    /// sync `m`" (groups `0..=m` applied): all of txn `t`'s writes and
    /// barriers landed iff `post[t] - 1 <= m`.
    fn must_have(&self, m: usize) -> usize {
        self.post.iter().filter(|&&c| c <= m + 1).count()
    }

    /// Transactions that **could** appear committed in that image: the
    /// commit frame write of txn `t` is issued after sync `pre[t]`, so
    /// it can be in a group `<= m` only if `pre[t] <= m`.
    fn may_have(&self, m: usize) -> usize {
        self.pre.iter().filter(|&&c| c <= m).count()
    }
}

/// A fresh durable store behind a barrier-mutation wrapper. `elide`
/// arms the mutation *before* the store is formatted, so the format and
/// checkpoint syncs are part of the enumerated site space too.
fn fresh_store(elide: Option<usize>) -> (ObjectStore, Arc<MutatingVolume>) {
    let mem = MemVolume::with_profile(PAGE, VOLUME_PAGES, DiskProfile::FREE).shared();
    let mv = MutatingVolume::new(mem).unwrap();
    if let Some(k) = elide {
        mv.elide(k);
    }
    let vol: SharedVolume = mv.clone();
    let store =
        ObjectStore::create_durable(vol, SPACES, PPS, StoreConfig::default(), WAL_PAGES).unwrap();
    (store, mv)
}

/// Run the scripted workload to completion (the wrapper is
/// pass-through, so nothing fails live) and record the sync trace.
fn run_workload(store: &mut ObjectStore, mv: &MutatingVolume) -> SyncTrace {
    let mut handles = BTreeMap::new();
    let mut trace = SyncTrace {
        pre: Vec::new(),
        post: Vec::new(),
    };
    for txn in workload() {
        store.begin_txn();
        for op in &txn {
            store_apply(store, &mut handles, op).unwrap();
        }
        trace.pre.push(mv.sync_count());
        store.commit_txn().unwrap();
        trace.post.push(mv.sync_count());
    }
    trace
}

type Recovered = (ObjectStore, BTreeMap<u64, Vec<u8>>, Vec<LargeObject>);

/// Recover a crash image; `None` if restart recovery itself rejects the
/// volume or a recovered object cannot be read back.
fn try_recover(image: Vec<u8>) -> Option<Recovered> {
    let vol = MemVolume::from_bytes(PAGE, image, DiskProfile::FREE).shared();
    let (store, report) =
        ObjectStore::open_durable(vol, SPACES, PPS, StoreConfig::default(), WAL_PAGES).ok()?;
    let mut bytes = BTreeMap::new();
    for obj in &report.objects {
        bytes.insert(obj.id(), store.read_all(obj).ok()?);
    }
    Some((store, bytes, report.objects))
}

fn checker_clean(store: &ObjectStore, objects: &[LargeObject]) -> bool {
    let named: Vec<(String, LargeObject)> = objects
        .iter()
        .map(|o| (format!("obj-{}", o.id()), o.clone()))
        .collect();
    eos_check::check_store(store, &named, None).is_clean()
}

/// Does this crash image violate the durability contract? A violation
/// is any of: recovery refuses the volume, the recovered state matches
/// no acceptable committed prefix, or `eos-check` finds structural rot.
fn image_violates(
    image: Vec<u8>,
    states: &[BTreeMap<u64, Vec<u8>>],
    trace: &SyncTrace,
    m: usize,
) -> bool {
    let Some((store, bytes, objects)) = try_recover(image) else {
        return true;
    };
    let lo = trace.must_have(m);
    let hi = trace.may_have(m);
    let prefix_ok = (lo..=hi).any(|j| states[j] == bytes);
    !prefix_ok || !checker_clean(&store, &objects)
}

/// Baseline: with every sync intact, every "crashed after sync m" image
/// (from the end of format onwards) recovers to an acceptable committed
/// prefix. This is the control for the sweep below — it shows a failing
/// image under elision is the *elision's* doing.
#[test]
fn baseline_images_all_recover() {
    let states = model_states();
    let (mut store, mv) = fresh_store(None);
    let format_syncs = mv.sync_count();
    assert!(format_syncs >= 1, "format must sync at least once");
    let trace = run_workload(&mut store, &mv);
    drop(store);

    let sealed = mv.sealed_groups();
    assert_eq!(
        states.last().unwrap().len(),
        3,
        "model end state should hold three objects"
    );
    for m in format_syncs - 1..sealed {
        assert!(
            !image_violates(mv.crash_image(m), &states, &trace, m),
            "baseline image after sync {m} (of {sealed}) failed recovery"
        );
    }
}

/// The sweep: elide each sync site in turn and demand at least one
/// failing crash image. `crash_image` (the whole unsealed group stayed
/// in the queue) is tried first; `crash_image_reordered` (the queue was
/// reordered and only the group's last write jumped the dead barrier)
/// is the fallback ordering.
#[test]
fn every_sync_site_is_load_bearing() {
    let states = model_states();

    // Baseline run fixes the sync-site count for the deterministic
    // workload (the same count is re-asserted per elision run).
    let (mut store, mv) = fresh_store(None);
    run_workload(&mut store, &mv);
    drop(store);
    let total = mv.sealed_groups();
    println!("barrier mutation: {total} sync sites enumerated");
    assert!(total >= 10, "too few sync sites for a meaningful sweep");

    let mut unbroken: Vec<usize> = Vec::new();
    for k in 0..total {
        let (mut store, mv) = fresh_store(Some(k));
        let trace = run_workload(&mut store, &mv);
        drop(store);
        assert_eq!(
            mv.sealed_groups(),
            total,
            "k={k}: workload must be deterministic in its sync count"
        );
        if !elision_breaks_some_image(&mv, &states, &trace, k, total) {
            unbroken.push(k);
        }
    }
    assert!(
        unbroken.is_empty(),
        "sync sites {unbroken:?} (of {total}) were elided without any crash \
         image failing recovery — either the sync is dead weight or the \
         sweep's orderings are too tame"
    );
}

fn elision_breaks_some_image(
    mv: &MutatingVolume,
    states: &[BTreeMap<u64, Vec<u8>>],
    trace: &SyncTrace,
    k: usize,
    total: usize,
) -> bool {
    for m in k..total {
        if image_violates(mv.crash_image(m), states, trace, m)
            || image_violates(mv.crash_image_reordered(m), states, trace, m)
        {
            return true;
        }
    }
    false
}

/// CI smoke (`cargo test --test barrier_mutation quick_`): the three
/// barriers whose removal the static L6 rule provably catches —
/// txn 3's undo-image force in `logged_replace`, the data-before-log
/// barrier in `prepare_commit`, and the commit-frame force — each also
/// break a crash image at runtime.
#[test]
fn quick_pinned_barriers_each_break_recovery() {
    let states = model_states();
    let (mut store, mv) = fresh_store(None);
    let trace = run_workload(&mut store, &mv);
    drop(store);
    let total = mv.sealed_groups();

    // txn 3 (index 2) is pure in-place replaces: its first sync is the
    // undo-image WAL force; its commit's last two syncs are the
    // shadow-data barrier and the commit-frame force.
    let undo_force = trace.post[1];
    let data_barrier = trace.post[2] - 2;
    let frame_force = trace.post[2] - 1;
    for (name, k) in [
        ("undo-image force", undo_force),
        ("shadow-data barrier", data_barrier),
        ("commit-frame force", frame_force),
    ] {
        let (mut store, mv) = fresh_store(Some(k));
        let trace = run_workload(&mut store, &mv);
        drop(store);
        assert!(
            elision_breaks_some_image(&mv, &states, &trace, k, total),
            "eliding the {name} (sync {k}) broke no crash image"
        );
    }
}

/// Anti-drift census: the seal sites the static L6 analysis extracts
/// from eos-core must match this pinned inventory, and the runtime
/// workload must actually cross enough sync sites to exercise them.
/// Adding or removing a `durability: seals(...)` annotation — or the
/// sync under it — fails this test until the sweep above is revisited.
#[test]
fn quick_static_seal_census_matches_runtime() {
    let analysis = eos_lint::crashdep_analysis(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();

    assert_eq!(
        analysis
            .classes
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>(),
        vec![
            "commit-frame",
            "committed-page",
            "mvcc-publish",
            "shadow-data",
            "superblock",
            "undo-image",
        ],
        "durability class table drifted (DESIGN.md §15)"
    );

    // (file, classes sealed) per seal site, sorted by location.
    let seal_sites: Vec<(String, Vec<String>)> = analysis
        .seal_sites_in("eos-core")
        .iter()
        .map(|c| {
            let file = c
                .location
                .rsplit_once(':')
                .map_or(c.location.as_str(), |(f, _)| f)
                .to_string();
            (file, c.seals.clone())
        })
        .collect();
    let expect = |f: &str, s: &[&str]| {
        (
            format!("crates/core/src/{f}"),
            s.iter().map(|c| (*c).to_string()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(
        seal_sites,
        vec![
            // commit_solo: data barrier + per-stripe log force.
            expect("concurrent.rs", &["shadow-data"]),
            expect("concurrent.rs", &["commit-frame"]),
            // flush_batch: phase A barrier + phase C force (striped
            // and unstriped arms).
            expect("concurrent.rs", &["shadow-data"]),
            expect("concurrent.rs", &["commit-frame"]),
            expect("concurrent.rs", &["commit-frame"]),
            expect("durable.rs", &["shadow-data", "superblock"]),
            expect("durable.rs", &["shadow-data"]),
            expect("durable.rs", &["superblock"]),
            expect("store.rs", &["commit-frame"]),
            expect("store.rs", &["shadow-data"]),
            expect("store.rs", &["shadow-data"]),
            expect("store/logged.rs", &["undo-image"]),
            // StripedWal::sync_stripes — the per-stripe commit seal.
            expect("striped.rs", &["commit-frame"]),
        ],
        "eos-core seal-site census drifted: update the L6 annotations, this \
         pin, and re-run the barrier-mutation sweep"
    );

    // Runtime side: the canonical workload crosses the format sync plus
    // at least one undo force, data barrier, and commit force per txn.
    let (mut store, mv) = fresh_store(None);
    let format_syncs = mv.sync_count();
    let trace = run_workload(&mut store, &mv);
    drop(store);
    assert!(format_syncs >= 1);
    assert!(
        mv.sync_count() >= format_syncs + 2 * workload().len(),
        "workload crossed only {} sync sites — too few to exercise the \
         declared barriers",
        mv.sync_count()
    );
    assert_eq!(trace.post.len(), workload().len());
}
