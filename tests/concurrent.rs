//! Concurrency smoke tests: shared read access across threads (reads
//! take `&ObjectStore`), plus a locked multi-writer protocol built from
//! the §4.5 [`RangeLockManager`].

use eos::core::locks::{LockMode, RangeLockManager};
use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};
use std::sync::{Arc, Mutex};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 11) % 251) as u8).collect()
}

#[test]
fn parallel_readers_share_the_store() {
    let vol = MemVolume::with_profile(1024, 8_002, DiskProfile::FREE).shared();
    let mut store = ObjectStore::create(
        vol,
        2,
        4_000,
        StoreConfig {
            threshold: Threshold::Fixed(4),
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let data = pattern(2_000_000);
    let mut obj = store.create_with(&data, Some(data.len() as u64)).unwrap();
    // Fragment a little so descents hit real index pages.
    for i in 0..30u64 {
        store
            .insert(&mut obj, (i * 65_537) % 1_900_000, b"wedge")
            .unwrap();
    }
    let model = store.read_all(&obj).unwrap();

    let store = Arc::new(store);
    let obj = Arc::new(obj);
    let model = Arc::new(model);
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let store = store.clone();
        let obj = obj.clone();
        let model = model.clone();
        threads.push(std::thread::spawn(move || {
            let mut x = 0x9E37_79B9u64 ^ t;
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let size = obj.size();
                let off = x % size;
                let len = (x >> 32) % 5_000;
                let len = len.min(size - off);
                let got = store.read(&obj, off, len).unwrap();
                assert_eq!(got, &model[off as usize..(off + len) as usize]);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn locked_writers_serialize_correctly() {
    // Multiple writer threads share one store behind a mutex (the store
    // is single-writer, as in the paper's prototype) and use the range
    // lock manager as the §4.5 concurrency-control protocol: exclusive
    // tail locks for inserts, shared locks for reads.
    let store = Arc::new(Mutex::new(ObjectStore::in_memory(1024, 8_000)));
    let obj = {
        let mut s = store.lock().unwrap();
        let o = s.create_with(&pattern(100_000), None).unwrap();
        Arc::new(Mutex::new(o))
    };
    let locks = RangeLockManager::new();

    let mut threads = Vec::new();
    for txn in 0..6u64 {
        let store = store.clone();
        let obj = obj.clone();
        let locks = locks.clone();
        threads.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let off = (txn * 9973 + i * 131) % 90_000;
                // Insert shifts everything right of `off`.
                locks.lock_tail(txn, 1, off, LockMode::Exclusive);
                {
                    let mut s = store.lock().unwrap();
                    let mut o = obj.lock().unwrap();
                    s.insert(&mut o, off, &[txn as u8; 16]).unwrap();
                }
                locks.release_all(txn);

                // Shared read of a fixed prefix.
                locks.lock(txn, 1, 0, 64, LockMode::Shared);
                {
                    let s = store.lock().unwrap();
                    let o = obj.lock().unwrap();
                    let _ = s.read(&o, 0, 64).unwrap();
                }
                locks.release_all(txn);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let s = store.lock().unwrap();
    let o = obj.lock().unwrap();
    assert_eq!(o.size(), 100_000 + 6 * 50 * 16);
    s.verify_object(&o).unwrap();
}
