//! Concurrency smoke tests: shared read access across threads (reads
//! take `&ObjectStore`), plus a locked multi-writer protocol built from
//! the §4.5 [`RangeLockManager`].

use eos::core::locks::{LockMode, RangeLockManager};
use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::pager::{DiskProfile, MemVolume};
use std::sync::{Arc, Barrier, Mutex, RwLock};

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 11) % 251) as u8).collect()
}

#[test]
fn parallel_readers_share_the_store() {
    let vol = MemVolume::with_profile(1024, 8_002, DiskProfile::FREE).shared();
    let mut store = ObjectStore::create(
        vol,
        2,
        4_000,
        StoreConfig {
            threshold: Threshold::Fixed(4),
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let data = pattern(2_000_000);
    let mut obj = store.create_with(&data, Some(data.len() as u64)).unwrap();
    // Fragment a little so descents hit real index pages.
    for i in 0..30u64 {
        store
            .insert(&mut obj, (i * 65_537) % 1_900_000, b"wedge")
            .unwrap();
    }
    let model = store.read_all(&obj).unwrap();

    let store = Arc::new(store);
    let obj = Arc::new(obj);
    let model = Arc::new(model);
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let store = store.clone();
        let obj = obj.clone();
        let model = model.clone();
        threads.push(std::thread::spawn(move || {
            let mut x = 0x9E37_79B9u64 ^ t;
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let size = obj.size();
                let off = x % size;
                let len = (x >> 32) % 5_000;
                let len = len.min(size - off);
                let got = store.read(&obj, off, len).unwrap();
                assert_eq!(got, &model[off as usize..(off + len) as usize]);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn locked_writers_serialize_correctly() {
    // Multiple writer threads share one store behind a mutex (the store
    // is single-writer, as in the paper's prototype) and use the range
    // lock manager as the §4.5 concurrency-control protocol: exclusive
    // tail locks for inserts, shared locks for reads.
    let store = Arc::new(Mutex::new(ObjectStore::in_memory(1024, 8_000)));
    let obj = {
        let mut s = store.lock().unwrap();
        let o = s.create_with(&pattern(100_000), None).unwrap();
        Arc::new(Mutex::new(o))
    };
    let locks = RangeLockManager::new();

    let mut threads = Vec::new();
    for txn in 0..6u64 {
        let store = store.clone();
        let obj = obj.clone();
        let locks = locks.clone();
        threads.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let off = (txn * 9973 + i * 131) % 90_000;
                // Insert shifts everything right of `off`.
                locks.lock_tail(txn, 1, off, LockMode::Exclusive);
                {
                    let mut s = store.lock().unwrap();
                    let mut o = obj.lock().unwrap();
                    s.insert(&mut o, off, &[txn as u8; 16]).unwrap();
                }
                locks.release_all(txn);

                // Shared read of a fixed prefix.
                locks.lock(txn, 1, 0, 64, LockMode::Shared);
                {
                    let s = store.lock().unwrap();
                    let o = obj.lock().unwrap();
                    let _ = s.read(&o, 0, 64).unwrap();
                }
                locks.release_all(txn);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let s = store.lock().unwrap();
    let o = obj.lock().unwrap();
    assert_eq!(o.size(), 100_000 + 6 * 50 * 16);
    s.verify_object(&o).unwrap();
}

/// Readers during open writer transactions (§4.5 deferred deallocation).
///
/// Shadowed updates (insert/delete/append/truncate) never overwrite
/// committed pages, and the pages an update supersedes are only freed
/// when the transaction commits. So a reader holding the last
/// *committed* descriptor must see byte-exact committed contents even
/// while a writer transaction has already shadow-updated the object.
///
/// The schedule is deterministic (barrier-stepped, fixed xorshift
/// seed): each round the writer opens a transaction and applies a few
/// shadowed ops, then parks while every reader hammers the previous
/// committed descriptor — concurrently with the open, uncommitted
/// transaction — then the writer commits (or aborts, every 5th round)
/// and publishes. A torn read or a reused-too-early page shows up as a
/// byte mismatch.
#[test]
fn readers_see_committed_state_during_writer_txns() {
    const ROUNDS: usize = 24;
    const READERS: usize = 4;
    const READS_PER_ROUND: usize = 16;

    let store = Arc::new(RwLock::new(ObjectStore::in_memory(1024, 8_000)));
    // (descriptor bytes, expected contents) of the last committed state.
    let published = {
        let mut s = store.write().unwrap();
        let data = pattern(120_000);
        let o = s.create_with(&data, None).unwrap();
        Arc::new(Mutex::new((o, data)))
    };
    // Three rendezvous per round: A = txn open, readers go; B = readers
    // done, writer may commit; C = published, next round.
    let barrier = Arc::new(Barrier::new(READERS + 1));

    let mut threads = Vec::new();
    for t in 0..READERS as u64 {
        let store = store.clone();
        let published = published.clone();
        let barrier = barrier.clone();
        threads.push(std::thread::spawn(move || {
            let mut x = 0x2545_F491_4F6C_DD1Du64 ^ (t + 1);
            for _ in 0..ROUNDS {
                barrier.wait(); // A: txn is open, shadows in place
                let (obj, expected) = published.lock().unwrap().clone();
                let s = store.read().unwrap();
                assert!(s.in_txn(), "writer transaction should be open");
                for _ in 0..READS_PER_ROUND {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let size = obj.size();
                    let off = x % size;
                    let len = ((x >> 33) % 7_000).min(size - off);
                    let got = s.read(&obj, off, len).unwrap();
                    assert_eq!(
                        got,
                        &expected[off as usize..(off + len) as usize],
                        "torn read at {off}+{len} during open txn"
                    );
                }
                drop(s);
                barrier.wait(); // B: readers done
                barrier.wait(); // C: writer published
            }
        }));
    }

    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for round in 0..ROUNDS {
        let (mut obj, mut model) = published.lock().unwrap().clone();
        {
            let mut s = store.write().unwrap();
            s.begin_txn();
            for _ in 0..3 {
                let size = model.len() as u64;
                match step() % 4 {
                    0 => {
                        let at = step() % (size + 1);
                        let data = pattern(1 + (step() % 4_000) as usize);
                        s.insert(&mut obj, at, &data).unwrap();
                        model.splice(at as usize..at as usize, data.iter().copied());
                    }
                    1 if size > 1 => {
                        let at = step() % size;
                        let len = (step() % 3_000).min(size - at).max(1);
                        s.delete(&mut obj, at, len).unwrap();
                        model.drain(at as usize..(at + len) as usize);
                    }
                    2 => {
                        let data = pattern(1 + (step() % 5_000) as usize);
                        s.append(&mut obj, &data).unwrap();
                        model.extend_from_slice(&data);
                    }
                    _ if size > 1 => {
                        let to = size - (step() % (size / 2)).max(1);
                        s.truncate(&mut obj, to).unwrap();
                        model.truncate(to as usize);
                    }
                    _ => {}
                }
            }
        } // drop write guard: txn stays open, deferred frees pending
        barrier.wait(); // A — readers verify the *previous* commit
        barrier.wait(); // B — readers done
        {
            let mut s = store.write().unwrap();
            if round % 5 == 4 {
                // Abort: shadow pages are freed, the committed state
                // (what readers just verified) remains the truth.
                s.abort_txn().unwrap();
            } else {
                s.commit_txn().unwrap();
                *published.lock().unwrap() = (obj, model);
            }
        }
        barrier.wait(); // C
    }
    for t in threads {
        t.join().unwrap();
    }

    let s = store.read().unwrap();
    let (obj, model) = published.lock().unwrap().clone();
    assert_eq!(s.read_all(&obj).unwrap(), model);
    let named = vec![("obj".to_string(), obj.clone())];
    let report = eos_check::check_store(&s, &named, None);
    assert!(report.is_clean(), "{}", report.render_table());
}
