//! Runtime half of eos-lockdep (build with `--features lockdep`): the
//! `Tracked*` wrappers must panic with *both* witness stacks on the
//! first observed lock-order inversion or volume I/O under a
//! `forbids_io` class — and stay silent on the real concurrent
//! front-end, which is exactly what CI runs the stress suite for.
//!
//! Lock classes live in a process-global registry, so every test here
//! uses its own `test.rt*` class names.
#![cfg(feature = "lockdep")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use eos::core::{ConcurrentStore, ObjectStore, StoreConfig};
use eos::pager::{DiskProfile, MemVolume, SharedVolume};
use parking_lot::{on_volume_io, LockClass, TrackedMutex, TrackedRwLock};

/// Run `f`, require a panic, and hand back the message.
fn panic_message(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("witness did not fire");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("panic payload was not a string");
    }
}

#[test]
fn ab_ba_inversion_panics_with_both_witness_stacks() {
    let a = TrackedMutex::new(LockClass::forbids_io("test.rt_inv_a"), ());
    let b = TrackedMutex::new(LockClass::forbids_io("test.rt_inv_b"), ());

    // Teach the graph the edge A → B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // B → A must now panic *before* blocking, naming both witnesses.
    let msg = panic_message(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert!(msg.contains("lock-order inversion"), "{msg}");
    assert!(msg.contains("test.rt_inv_a"), "{msg}");
    assert!(msg.contains("test.rt_inv_b"), "{msg}");
    // The first-observed edge (the A → B run)...
    assert!(msg.contains("first observed on thread"), "{msg}");
    // ...and the conflicting acquisition (this run), with its held stack.
    assert!(msg.contains("conflicting acquisition on thread"), "{msg}");
    assert!(msg.contains("holds `test.rt_inv_b`"), "{msg}");
    assert!(msg.contains(file!()), "{msg}");
}

#[test]
fn recursive_acquisition_panics() {
    let m = Arc::new(TrackedMutex::new(LockClass::forbids_io("test.rt_rec"), ()));
    let m2 = m.clone();
    let msg = panic_message(move || {
        let _g1 = m2.lock();
        let _g2 = m2.lock();
    });
    assert!(msg.contains("recursive acquisition"), "{msg}");
    assert!(msg.contains("test.rt_rec"), "{msg}");
}

#[test]
fn volume_io_under_forbidden_class_panics() {
    let m = TrackedMutex::new(LockClass::forbids_io("test.rt_io"), ());
    let msg = panic_message(|| {
        let _g = m.lock();
        on_volume_io("write");
    });
    assert!(msg.contains("volume I/O `write`"), "{msg}");
    assert!(msg.contains("test.rt_io"), "{msg}");
    assert!(msg.contains("forbids I/O"), "{msg}");
}

#[test]
fn volume_io_under_allowed_class_is_silent() {
    let m = TrackedRwLock::new(LockClass::allows_io("test.rt_io_ok"), ());
    let _g = m.write();
    on_volume_io("sync");
}

/// The real front-end, driven hard enough to exercise the store latch,
/// the group-commit mutex, the range-lock table, and the pager volume
/// lock on several threads at once. The witness observing an inversion
/// anywhere in that stack fails this test with the two stacks above —
/// silence is the assertion.
#[test]
fn concurrent_store_is_silent_under_the_witness() {
    let volume: SharedVolume = MemVolume::with_profile(1024, 4096, DiskProfile::FREE).shared();
    let store = ObjectStore::create_durable(
        volume,
        2,
        1024,
        StoreConfig {
            sync_on_commit: true,
            ..StoreConfig::default()
        },
        62,
    )
    .unwrap();
    let cs = Arc::new(ConcurrentStore::new(store));

    let mut handles = Vec::new();
    for w in 0..4u64 {
        let cs = Arc::clone(&cs);
        handles.push(std::thread::spawn(move || {
            let txn = cs.begin();
            let mut obj = txn.create(&vec![w as u8; 1000], None).unwrap();
            for i in 0..8u64 {
                let byte = (w * 8 + i) as u8;
                txn.append(&mut obj, &vec![byte; 700]).unwrap();
            }
            txn.commit().unwrap();
            let txn = cs.begin();
            txn.replace(&mut obj, 100, &[0xAB; 300]).unwrap();
            txn.delete(&mut obj, 0, 50).unwrap();
            let back = txn.read(&obj, 0, 1000).unwrap();
            assert_eq!(back.len(), 1000);
            txn.commit().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
