//! The paper's worked cost claims, checked against per-operation I/O
//! attribution (§4.2, §4.1).
//!
//! These tests measure through [`eos::obs`] spans rather than raw
//! volume counters: each assertion reads the delta of one operation's
//! row between two [`MetricsSnapshot`]s, so unrelated I/O (tree walks
//! by diagnostics, other operations) cannot contaminate the numbers —
//! exactly the bookkeeping `eos stats` exposes.

use eos::core::{ObjectStore, StoreConfig, Threshold};
use eos::obs::MetricsSnapshot;

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8).collect()
}

/// Delta of one op row between two snapshots:
/// `(count, seeks, page_reads, page_writes)`.
fn op_delta(before: &MetricsSnapshot, after: &MetricsSnapshot, op: &str) -> (u64, u64, u64, u64) {
    let b = before.op(op).unwrap();
    let a = after.op(op).unwrap();
    (
        a.count - b.count,
        a.seeks - b.seeks,
        a.page_reads - b.page_reads,
        a.page_writes - b.page_writes,
    )
}

/// §4.2: "Thus, retrieving a byte range of this object requires 3 disk
/// seeks plus the cost to transfer 6 pages" — the worked example reads
/// a small range from the *middle* of a large object whose positional
/// tree has grown past its root. The sequential search descends the
/// client-held root, reads at most two index pages, and transfers the
/// few segment pages the range overlaps.
#[test]
fn section_4_2_mid_object_range_read_costs() {
    // Small pages and an aggressive threshold shatter the object into
    // many small segments, forcing the tree to at least height 2 (the
    // shape of the paper's example: the root alone cannot hold the
    // leaf entries).
    let mut store = ObjectStore::in_memory_with(
        512,
        16_000,
        StoreConfig {
            threshold: Threshold::Fixed(1),
            ..StoreConfig::default()
        },
    );
    let mut model = pattern(250_000);
    let mut obj = store.create_with(&model, None).unwrap();
    for i in 0..120u64 {
        let off = (i * 4999) % (model.len() as u64);
        store.insert(&mut obj, off, b"##").unwrap();
        model.splice(off as usize..off as usize, *b"##");
    }
    let stats = store.object_stats(&obj).unwrap();
    assert!(
        stats.height >= 2,
        "worked example needs a non-root index level, got height {}",
        stats.height
    );

    let mid = obj.size() / 2;
    let before = store.metrics_snapshot();
    let got = store.read(&obj, mid, 400).unwrap();
    let after = store.metrics_snapshot();

    assert_eq!(got, model[mid as usize..mid as usize + 400]);
    let (count, seeks, reads, writes) = op_delta(&before, &after, "read");
    assert_eq!(count, 1);
    assert_eq!(writes, 0, "a read must write nothing");
    assert!(seeks <= 3, "paper: 3 seeks; attributed {seeks}");
    assert!(reads <= 6, "paper: 6 page transfers; attributed {reads}");
    assert!(seeks >= 2, "must descend the tree, not just hit a segment");
}

/// §4.1: when the final object size is declared up front, allocation
/// is exact — one segment of precisely the needed pages, one buddy
/// allocation (one directory-page write, the §3.3 "one disk access"
/// claim), and no trailing-pages trim. Without the hint the growth
/// policy over-allocates in doubling steps and pays an allocation plus
/// a seek for every intermediate segment, then a trim at close.
#[test]
fn hinted_append_allocates_exactly() {
    let mut store = ObjectStore::in_memory(4096, 4000);
    let data = pattern(100_000); // 25 pages at 4 KiB
    let pages = (data.len() as u64).div_ceil(4096);

    let before = store.metrics_snapshot();
    let obj = store.create_with(&data, Some(data.len() as u64)).unwrap();
    let after = store.metrics_snapshot();
    let (count, seeks, reads, writes) = op_delta(&before, &after, "create");
    assert_eq!(count, 1);
    assert_eq!(reads, 0, "exact allocation reads nothing back");
    assert_eq!(
        writes,
        pages + 1,
        "the data pages plus one directory flush — no trim traffic"
    );
    assert_eq!(
        seeks, 2,
        "one seek to the directory, one to the contiguous segment"
    );
    assert_eq!(store.read_all(&obj).unwrap(), data);

    // The same bytes without the hint: the growth policy's doubling
    // steps cost strictly more seeks and extra directory writes for
    // the intermediate allocations and the closing trim.
    let before = store.metrics_snapshot();
    store.create_with(&data, None).unwrap();
    let after = store.metrics_snapshot();
    let (_, unhinted_seeks, _, unhinted_writes) = op_delta(&before, &after, "create");
    assert!(
        unhinted_seeks > 2,
        "growth policy should take multiple extents, got {unhinted_seeks} seek(s)"
    );
    assert!(unhinted_writes > pages + 1, "doubling pays for its trims");
}

/// On a single-threaded workload every page of I/O happens under
/// exactly one span, so the per-operation attribution must sum to the
/// volume-global [`IoStats`](eos::pager::IoStats) delta — nothing
/// double-counted, nothing dropped.
#[test]
fn attribution_sums_to_the_global_io_delta() {
    let mut store = ObjectStore::in_memory(512, 8000);
    store.reset_io_stats(); // formatting I/O predates instrumentation

    let data = pattern(80_000);
    let mut obj = store.create_with(&data, None).unwrap();
    let mut second = store.create_with(&data[..10_000], Some(10_000)).unwrap();
    let _ = store.read(&obj, 100, 5_000).unwrap();
    store.insert(&mut obj, 40_000, &data[..3_000]).unwrap();
    store.append(&mut obj, &data[..7_000]).unwrap();
    store.replace(&mut obj, 200, &data[..1_000]).unwrap();
    store.delete(&mut obj, 10, 20_000).unwrap();
    store.compact(&mut obj).unwrap();
    let _ = store.read_all(&obj).unwrap();
    store.delete_object(&mut second).unwrap();

    let snap = store.metrics_snapshot();
    let io = store.io_stats();
    assert_eq!(snap.attributed_seeks(), io.seeks);
    assert_eq!(snap.attributed_transfers(), io.page_reads + io.page_writes);
    assert_eq!(snap.attributed_elapsed_us(), io.elapsed_us);
}
